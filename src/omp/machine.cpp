#include "repro/omp/machine.hpp"

#include <stdexcept>
#include <string>

#include "repro/common/assert.hpp"
#include "repro/vm/placement.hpp"

namespace repro::omp {

std::unique_ptr<Machine> Machine::create(
    const memsys::MachineConfig& config) {
  config.validate();
  // make_unique cannot reach the private constructor.
  auto machine = std::unique_ptr<Machine>(new Machine());
  machine->config_ = config;
  // Normalize the spec first so count-suffixed forms ("fat-hypercube:16",
  // "ring:8") and labeled hierarchies work anywhere a MachineConfig is
  // built; a count that disagrees with num_nodes is a configuration
  // error, reported as such rather than tripping a contract downstream.
  const topo::ParsedTopology parsed =
      topo::parse_topology(config.topology, config.num_nodes);
  if (parsed.num_nodes != config.num_nodes) {
    throw std::invalid_argument(
        "topology \"" + config.topology + "\" has " +
        std::to_string(parsed.num_nodes) + " nodes but the machine has " +
        std::to_string(config.num_nodes));
  }
  machine->topology_ = topo::make_topology(parsed.name, parsed.num_nodes);
  machine->kernel_ =
      std::make_unique<os::Kernel>(config, *machine->topology_);
  machine->memory_ = std::make_unique<memsys::MemorySystem>(
      config, *machine->topology_, *machine->kernel_);
  machine->kernel_->set_tlb_invalidator(machine->memory_.get());
  machine->mmci_ =
      std::make_unique<os::MemoryControlInterface>(*machine->kernel_);
  machine->engine_ = std::make_unique<sim::Engine>(*machine->memory_);
  machine->runtime_ =
      std::make_unique<Runtime>(*machine->engine_, config.num_procs());
  machine->address_space_ =
      std::make_unique<vm::AddressSpace>(config.page_size);
  return machine;
}

void Machine::set_placement(const std::string& name, std::uint64_t seed) {
  kernel_->set_policy(vm::make_placement(name, config_.num_nodes,
                                         config_.procs_per_node, seed));
}

void Machine::enable_kernel_daemon(const os::DaemonConfig& config) {
  kernel_->set_daemon(std::make_unique<os::KernelMigrationDaemon>(config));
  if (trace_sink_ != nullptr) {
    kernel_->daemon()->set_trace(trace_sink_.get(),
                                 trace_sink_->register_lane("daemon"));
  }
}

trace::TraceSink& Machine::enable_tracing() {
  if (trace_sink_ != nullptr) {
    return *trace_sink_;
  }
  trace_sink_ = std::make_unique<trace::TraceSink>();
  // Fixed registration order = stable lane ids = stable canonical dump.
  const std::uint16_t runtime_lane = trace_sink_->register_lane("runtime");
  const std::uint16_t kernel_lane = trace_sink_->register_lane("kernel");
  const std::uint16_t memsys_lane = trace_sink_->register_lane("memsys");
  upm_lane_ = trace_sink_->register_lane("upmlib");
  runtime_->set_trace(trace_sink_.get(), runtime_lane, memsys_lane);
  kernel_->set_trace(trace_sink_.get(), kernel_lane);
  if (coherence_ != nullptr) {
    coherence_->set_trace(trace_sink_.get(),
                          trace_sink_->register_lane("coherence"));
  }
  if (kernel_->daemon() != nullptr) {
    kernel_->daemon()->set_trace(trace_sink_.get(),
                                 trace_sink_->register_lane("daemon"));
  }
  if (fault_ != nullptr) {
    fault_->set_trace(trace_sink_.get(),
                      trace_sink_->register_lane("fault"));
  }
  return *trace_sink_;
}

coherence::CoherenceModel& Machine::enable_coherence(
    const coherence::CoherenceConfig& config) {
  REPRO_REQUIRE_MSG(coherence_ == nullptr, "coherence already enabled");
  coherence_ = std::make_unique<coherence::CoherenceModel>(config_, config);
  memory_->set_line_model(coherence_.get());
  if (trace_sink_ != nullptr) {
    // Enabled after tracing: the lane lands after the established
    // layout (the harness enables coherence first, placing it between
    // "upmlib" and "harness").
    coherence_->set_trace(trace_sink_.get(),
                          trace_sink_->register_lane("coherence"));
  }
  return *coherence_;
}

fault::FaultInjector& Machine::enable_fault_injection(
    const fault::FaultPlan& plan) {
  REPRO_REQUIRE_MSG(fault_ == nullptr, "fault injection already enabled");
  fault_ = std::make_unique<fault::FaultInjector>(plan);
  kernel_->set_fault_injector(fault_.get());
  mmci_->set_fault_injector(fault_.get());
  memory_->set_fault_injector(fault_.get());
  runtime_->set_fault_injector(fault_.get());
  if (trace_sink_ != nullptr) {
    // Registered after every default lane (and after "daemon" /
    // "harness" when those exist) so enabling faults never renumbers
    // the established lane layout.
    fault_->set_trace(trace_sink_.get(),
                      trace_sink_->register_lane("fault"));
  }
  return *fault_;
}

}  // namespace repro::omp
