#include "repro/omp/schedule.hpp"

#include "repro/common/assert.hpp"

namespace repro::omp {

Schedule Schedule::make_static() { return Schedule(Kind::kStatic, 0); }

Schedule Schedule::make_static_chunk(std::uint64_t chunk) {
  REPRO_REQUIRE(chunk >= 1);
  return Schedule(Kind::kStaticChunk, chunk);
}

Schedule Schedule::make_dynamic(std::uint64_t chunk) {
  REPRO_REQUIRE(chunk >= 1);
  return Schedule(Kind::kDynamic, chunk);
}

ChunkRange static_block(ThreadId t, std::size_t num_threads,
                        std::uint64_t n) {
  REPRO_REQUIRE(num_threads >= 1);
  REPRO_REQUIRE(t.value() < num_threads);
  const std::uint64_t threads = num_threads;
  const std::uint64_t base = n / threads;
  const std::uint64_t extra = n % threads;
  const std::uint64_t tid = t.value();
  const std::uint64_t begin =
      tid * base + (tid < extra ? tid : extra);
  const std::uint64_t size = base + (tid < extra ? 1 : 0);
  return {begin, begin + size};
}

std::vector<ChunkRange> Schedule::chunks_for(ThreadId t,
                                             std::size_t num_threads,
                                             std::uint64_t n) const {
  REPRO_REQUIRE(num_threads >= 1);
  REPRO_REQUIRE(t.value() < num_threads);
  std::vector<ChunkRange> out;
  if (n == 0) {
    return out;
  }
  if (kind_ == Kind::kStatic) {
    const ChunkRange block = static_block(t, num_threads, n);
    if (block.size() > 0) {
      out.push_back(block);
    }
    return out;
  }
  // Chunked: chunk c covers [c*chunk, min(n, (c+1)*chunk)) and belongs
  // to thread c % num_threads.
  const std::uint64_t num_chunks = (n + chunk_ - 1) / chunk_;
  for (std::uint64_t c = t.value(); c < num_chunks; c += num_threads) {
    const std::uint64_t begin = c * chunk_;
    const std::uint64_t end = std::min(n, begin + chunk_);
    out.push_back({begin, end});
  }
  return out;
}

ThreadId Schedule::owner_of(std::uint64_t i, std::size_t num_threads,
                            std::uint64_t n) const {
  REPRO_REQUIRE(i < n);
  REPRO_REQUIRE(num_threads >= 1);
  if (kind_ == Kind::kStatic) {
    // Invert the block partition.
    const std::uint64_t threads = num_threads;
    const std::uint64_t base = n / threads;
    const std::uint64_t extra = n % threads;
    const std::uint64_t big = (base + 1) * extra;  // iterations in big blocks
    if (base == 0) {
      // Fewer iterations than threads: iteration i belongs to thread i.
      return ThreadId(static_cast<std::uint32_t>(i));
    }
    if (i < big) {
      return ThreadId(static_cast<std::uint32_t>(i / (base + 1)));
    }
    return ThreadId(static_cast<std::uint32_t>(extra + (i - big) / base));
  }
  return ThreadId(static_cast<std::uint32_t>((i / chunk_) % num_threads));
}

}  // namespace repro::omp
