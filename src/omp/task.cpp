#include "repro/omp/task.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>

#include "repro/common/assert.hpp"
#include "repro/common/hash.hpp"
#include "repro/trace/event.hpp"

namespace repro::omp {

TaskScheduler::TaskScheduler(const topo::Topology& topology,
                             std::vector<NodeId> thread_nodes,
                             std::uint64_t seed)
    : thread_nodes_(std::move(thread_nodes)), seed_(seed) {
  REPRO_REQUIRE(!thread_nodes_.empty());
  for (const NodeId node : thread_nodes_) {
    REPRO_REQUIRE(node.value() < topology.num_nodes());
  }
  // Precompute every thief's victim scan order. Group victims by hop
  // distance ascending (nearest-in-hierarchy first); inside a group,
  // thread ids ascending. std::map iterates keys in sorted order, which
  // is exactly the group order we want.
  const std::size_t num_threads = thread_nodes_.size();
  groups_.resize(num_threads);
  for (std::uint32_t thief = 0; thief < num_threads; ++thief) {
    std::map<unsigned, std::vector<std::uint32_t>> by_hops;
    for (std::uint32_t victim = 0; victim < num_threads; ++victim) {
      if (victim == thief) {
        continue;
      }
      by_hops[topology.hops(thread_nodes_[thief], thread_nodes_[victim])]
          .push_back(victim);
    }
    groups_[thief].reserve(by_hops.size());
    for (auto& [hops, members] : by_hops) {
      groups_[thief].push_back(std::move(members));
    }
  }
}

const std::vector<std::vector<std::uint32_t>>& TaskScheduler::victim_groups(
    ThreadId thief) const {
  REPRO_REQUIRE(thief.value() < groups_.size());
  return groups_[thief.value()];
}

std::vector<TaskAssignment> TaskScheduler::schedule(
    std::span<const TaskDesc> tasks) const {
  const std::size_t num_threads = thread_nodes_.size();
  std::vector<std::deque<std::uint32_t>> deques(num_threads);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    REPRO_REQUIRE_MSG(tasks[i].home.value() < num_threads,
                      "task home beyond the team");
    deques[tasks[i].home.value()].push_back(static_cast<std::uint32_t>(i));
  }

  constexpr Ns kParked = std::numeric_limits<Ns>::max();
  std::vector<Ns> clock(num_threads, 0);
  std::vector<std::uint64_t> steals(num_threads, 0);
  std::vector<TaskAssignment> out;
  out.reserve(tasks.size());

  std::size_t remaining = tasks.size();
  while (remaining > 0) {
    // The thread whose virtual clock is earliest acts next (lowest id
    // breaks ties): a deterministic stand-in for "the first thread to
    // finish its current task".
    std::uint32_t actor = 0;
    Ns best = kParked;
    for (std::uint32_t t = 0; t < num_threads; ++t) {
      if (clock[t] < best) {
        best = clock[t];
        actor = t;
      }
    }
    REPRO_REQUIRE_MSG(best != kParked,
                      "tasks remain but every thread parked");

    TaskAssignment a;
    a.executor = ThreadId(actor);
    if (!deques[actor].empty()) {
      // Own work: LIFO (newest first), the locality-friendly order.
      a.task = deques[actor].back();
      deques[actor].pop_back();
      a.victim = ThreadId(actor);
    } else {
      // Steal: scan victim groups nearest-first; the starting offset
      // inside each group is a pure hash of (seed, thief, steal
      // counter), so the scan is spread but replayable.
      const std::uint32_t* found = nullptr;
      std::uint32_t victim = 0;
      for (const std::vector<std::uint32_t>& group : groups_[actor]) {
        const std::size_t offset = static_cast<std::size_t>(
            avalanche64(seed_ ^ (static_cast<std::uint64_t>(actor) << 32) ^
                        steals[actor]) %
            group.size());
        for (std::size_t j = 0; j < group.size(); ++j) {
          const std::uint32_t v = group[(offset + j) % group.size()];
          if (!deques[v].empty()) {
            victim = v;
            found = &group[(offset + j) % group.size()];
            break;
          }
        }
        if (found != nullptr) {
          break;
        }
      }
      if (found == nullptr) {
        // Nothing anywhere to steal: this thread is done for the wave.
        clock[actor] = kParked;
        continue;
      }
      // FIFO from the victim: the oldest task is the one the victim is
      // least likely to touch soon (and the largest in recursive
      // decompositions).
      a.task = deques[victim].front();
      deques[victim].pop_front();
      a.stolen = true;
      a.victim = ThreadId(victim);
      a.steal_count = steals[actor]++;
    }
    clock[actor] += std::max<Ns>(1, tasks[a.task].estimate);
    out.push_back(a);
    --remaining;
  }
  return out;
}

void build_task_region(sim::RegionBuilder& builder,
                       std::span<const TaskAssignment> assignments,
                       std::span<const TaskDesc> tasks) {
  for (const TaskAssignment& a : assignments) {
    REPRO_REQUIRE(a.task < tasks.size());
    REPRO_REQUIRE(tasks[a.task].body != nullptr);
    tasks[a.task].body(a.executor, builder);
  }
}

void emit_task_events(Runtime& rt,
                      std::span<const TaskAssignment> assignments,
                      std::span<const TaskDesc> tasks) {
  trace::TraceSink* sink = rt.trace_sink();
  if (sink == nullptr) {
    return;
  }
  const std::uint16_t lane = rt.trace_lane();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    trace::TraceEvent ev;
    ev.kind = trace::EventKind::kTaskSpawn;
    ev.time = rt.now();
    ev.node = static_cast<std::int32_t>(tasks[i].home.value());
    ev.a = i;
    ev.b = static_cast<std::uint64_t>(std::max<Ns>(1, tasks[i].estimate));
    sink->emit(lane, ev);
  }
  for (const TaskAssignment& a : assignments) {
    if (!a.stolen) {
      continue;
    }
    trace::TraceEvent ev;
    ev.kind = trace::EventKind::kTaskSteal;
    ev.time = rt.now();
    ev.node = static_cast<std::int32_t>(a.executor.value());
    ev.dst = static_cast<std::int32_t>(a.executor.value());
    ev.src = static_cast<std::int32_t>(a.victim.value());
    ev.a = a.task;
    ev.b = a.steal_count;
    sink->emit(lane, ev);
  }
}

sim::RegionResult run_tasks(Runtime& rt, const TaskScheduler& scheduler,
                            const std::string& name,
                            std::span<const TaskDesc> tasks) {
  REPRO_REQUIRE_MSG(scheduler.num_threads() == rt.num_threads(),
                    "scheduler sized for a different team");
  const std::vector<TaskAssignment> assignments = scheduler.schedule(tasks);
  sim::RegionBuilder builder = rt.make_region();
  build_task_region(builder, assignments, tasks);
  emit_task_events(rt, assignments, tasks);
  return rt.run(name, std::move(builder));
}

}  // namespace repro::omp
