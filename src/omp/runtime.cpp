#include "repro/omp/runtime.hpp"

#include <algorithm>
#include <utility>

#include "repro/common/assert.hpp"

namespace repro::omp {

Runtime::Runtime(sim::Engine& engine, std::size_t num_threads)
    : engine_(&engine), num_threads_(num_threads) {
  REPRO_REQUIRE(num_threads >= 1);
  REPRO_REQUIRE(num_threads <= engine.memory().config().num_procs());
  binding_.reserve(num_threads);
  for (std::uint32_t t = 0; t < num_threads; ++t) {
    binding_.push_back(ProcId(t));
  }
}

ProcId Runtime::proc_of(ThreadId thread) const {
  REPRO_REQUIRE(thread.value() < num_threads_);
  return binding_[thread.value()];
}

void Runtime::rebind(ThreadId thread, ProcId proc) {
  REPRO_REQUIRE(thread.value() < num_threads_);
  REPRO_REQUIRE(proc.value() < engine_->memory().config().num_procs());
  for (std::uint32_t t = 0; t < num_threads_; ++t) {
    REPRO_REQUIRE_MSG(t == thread.value() || binding_[t] != proc,
                      "two threads bound to one processor");
  }
  binding_[thread.value()] = proc;
}

void Runtime::swap_binding(ThreadId a, ThreadId b) {
  REPRO_REQUIRE(a.value() < num_threads_ && b.value() < num_threads_);
  std::swap(binding_[a.value()], binding_[b.value()]);
}

sim::RegionBuilder Runtime::make_region() const {
  return sim::RegionBuilder(num_threads_);
}

sim::RegionResult Runtime::run(const std::string& name,
                               const sim::RegionProgram& program) {
  if (inspector_) {
    inspector_(name, program, binding_);
  }
  if (recorder_) {
    recorder_(name, program, binding_);
  }
  if (dry_run_) {
    sim::RegionResult result;
    result.start = now_;
    result.end = now_;
    result.thread_end.assign(program.num_threads(), now_);
    records_.push_back(RegionRecord{name, now_, now_, 1.0});
    return result;
  }
  if (trace_ != nullptr) {
    // Events fired inside the region (daemon scans, kernel migrations)
    // inherit this phase; restored to 0 (serial code) after the join.
    trace_->set_phase(trace_->intern_phase(name));
    trace_->set_now(now_);
    trace::TraceEvent ev;
    ev.kind = trace::EventKind::kRegionBegin;
    ev.time = now_;
    trace_->emit(trace_lane_, ev);
  }
  sim::RegionResult result = engine_->run(now_, program, binding_);
  if (fault_ != nullptr) {
    // Injected preemption: the victim thread lost a timeslice inside
    // the region, so its completion (and possibly the join barrier)
    // moves out. Applied before the barrier-wait events below so the
    // trace reflects the stretched region.
    const auto preempt = fault_->on_region(
        static_cast<std::uint32_t>(result.thread_end.size()), result.end);
    if (preempt.fired) {
      Ns& victim_end = result.thread_end[preempt.thread];
      victim_end += preempt.stretch;
      result.end = std::max(result.end, victim_end);
    }
  }
  now_ = result.end;
  records_.push_back(
      RegionRecord{name, result.start, result.end, result.imbalance()});
  if (trace_ != nullptr) {
    trace_->set_now(now_);
    for (std::size_t t = 0; t < result.thread_end.size(); ++t) {
      trace::TraceEvent ev;
      ev.kind = trace::EventKind::kBarrierWait;
      ev.time = result.end;
      ev.node = static_cast<std::int32_t>(t);
      ev.a = result.end - result.thread_end[t];
      trace_->emit(trace_lane_, ev);
    }
    engine_->memory().sample_queues(*trace_, memsys_lane_, result.end);
    trace::TraceEvent ev;
    ev.kind = trace::EventKind::kRegionEnd;
    ev.time = result.end;
    ev.a = result.end - result.start;
    trace_->emit(trace_lane_, ev);
    trace_->set_phase(0);
  }
  return result;
}

sim::RegionResult Runtime::run(const std::string& name,
                               sim::RegionBuilder&& region) {
  return run(name, sim::RegionProgram::compile(std::move(region)));
}

sim::RegionResult Runtime::parallel_for(const std::string& name,
                                        std::uint64_t n,
                                        const Schedule& schedule,
                                        const ChunkEmitter& emit) {
  sim::RegionBuilder region = make_region();
  for (std::uint32_t t = 0; t < num_threads_; ++t) {
    for (const ChunkRange& chunk :
         schedule.chunks_for(ThreadId(t), num_threads_, n)) {
      emit(ThreadId(t), chunk, region);
    }
  }
  return run(name, std::move(region));
}

sim::RegionResult Runtime::parallel_reduce(const std::string& name,
                                           std::uint64_t n,
                                           const Schedule& schedule,
                                           const ChunkEmitter& emit) {
  sim::RegionResult result = parallel_for(name, n, schedule, emit);
  // Combine tree: ceil(log2(team)) levels after the join.
  Ns combine = 0;
  for (std::size_t span = 1; span < num_threads_; span *= 2) {
    combine += reduction_step_;
  }
  advance(combine);
  result.end += combine;
  return result;
}

sim::RegionResult Runtime::sections(
    const std::string& name, const std::vector<SectionBody>& bodies) {
  REPRO_REQUIRE(!bodies.empty());
  sim::RegionBuilder region = make_region();
  for (std::size_t s = 0; s < bodies.size(); ++s) {
    const ThreadId thread(static_cast<std::uint32_t>(s % num_threads_));
    bodies[s](thread, region);
  }
  return run(name, std::move(region));
}

Ns Runtime::total_time(const std::string& name) const {
  Ns total = 0;
  for (const RegionRecord& r : records_) {
    if (r.name == name) {
      total += r.duration();
    }
  }
  return total;
}

}  // namespace repro::omp
