// OpenMP loop schedules (the SCHEDULE clause of the DO directive).
//
// Schedules partition an iteration space [0, n) among threads. The
// simulator only needs the *mapping* of iterations to threads; dynamic
// scheduling is modelled as interleaved chunks in round-robin order,
// which matches its steady-state distribution for the regular loops in
// these benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "repro/common/strong_id.hpp"

namespace repro::omp {

struct ChunkRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;  // exclusive

  [[nodiscard]] std::uint64_t size() const { return end - begin; }
  bool operator==(const ChunkRange&) const = default;
};

class Schedule {
 public:
  enum class Kind : std::uint8_t { kStatic, kStaticChunk, kDynamic };

  /// schedule(static): one contiguous block per thread.
  [[nodiscard]] static Schedule make_static();
  /// schedule(static, chunk): chunks dealt round-robin.
  [[nodiscard]] static Schedule make_static_chunk(std::uint64_t chunk);
  /// schedule(dynamic, chunk): modelled as round-robin chunks.
  [[nodiscard]] static Schedule make_dynamic(std::uint64_t chunk);

  /// The chunks of [0, n) assigned to thread `t` out of `num_threads`,
  /// in execution order.
  [[nodiscard]] std::vector<ChunkRange> chunks_for(ThreadId t,
                                                   std::size_t num_threads,
                                                   std::uint64_t n) const;

  /// Thread owning iteration `i` of [0, n). For kStatic this is the
  /// block owner; for chunked schedules the round-robin owner.
  [[nodiscard]] ThreadId owner_of(std::uint64_t i, std::size_t num_threads,
                                  std::uint64_t n) const;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] std::uint64_t chunk() const { return chunk_; }

 private:
  Schedule(Kind kind, std::uint64_t chunk) : kind_(kind), chunk_(chunk) {}

  Kind kind_;
  std::uint64_t chunk_;
};

/// Contiguous block of iteration space [0,n) owned by thread t under
/// schedule(static): the canonical OpenMP block partition (first
/// n % num_threads threads get one extra iteration).
[[nodiscard]] ChunkRange static_block(ThreadId t, std::size_t num_threads,
                                      std::uint64_t n);

}  // namespace repro::omp
