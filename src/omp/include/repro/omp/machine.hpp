// One-stop assembly of the simulated machine: topology, kernel, memory
// system, MMCI, simulation engine and OpenMP runtime, wired together
// with consistent lifetimes. This is the entry point of the public API:
//
//   auto machine = repro::omp::Machine::create({});       // 16-node O2K
//   machine->set_placement("rr", /*seed=*/42);
//   machine->enable_kernel_daemon({});                    // DSM_MIGRATION
//   auto& rt = machine->runtime();
//   ... build and run parallel regions ...
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "repro/coherence/model.hpp"
#include "repro/fault/injector.hpp"
#include "repro/memsys/config.hpp"
#include "repro/memsys/memory_system.hpp"
#include "repro/omp/runtime.hpp"
#include "repro/os/daemon.hpp"
#include "repro/os/kernel.hpp"
#include "repro/os/mmci.hpp"
#include "repro/sim/engine.hpp"
#include "repro/topology/topology.hpp"
#include "repro/trace/sink.hpp"
#include "repro/vm/address_space.hpp"

namespace repro::omp {

class Machine {
 public:
  /// Builds a machine from `config` (validated). The OpenMP team size
  /// defaults to one thread per processor.
  [[nodiscard]] static std::unique_ptr<Machine> create(
      const memsys::MachineConfig& config);

  /// Selects the page placement policy by paper name
  /// ("ft" | "rr" | "rand" | "wc"); the DSM_PLACEMENT equivalent.
  void set_placement(const std::string& name, std::uint64_t seed = 0);

  /// Enables the IRIX-style kernel migration daemon (DSM_MIGRATION).
  void enable_kernel_daemon(const os::DaemonConfig& config);

  /// Builds the machine-wide trace sink and threads it through every
  /// layer (runtime regions/barriers, kernel migrations, daemon scans,
  /// memory-queue samples). Lanes are registered in a fixed order so
  /// the canonical dump -- and its digest -- depend only on simulated
  /// execution, never on host scheduling. Idempotent; a daemon enabled
  /// after this call is wired automatically.
  trace::TraceSink& enable_tracing();

  /// Builds the fault injector from `plan` (validated) and wires its
  /// hooks into the kernel (busy migrations), MMCI (counter
  /// corruption), memory system (node slowdowns) and runtime
  /// (preemptions). When tracing is on, injected faults get their own
  /// "fault" lane -- registered last so the default lane layout is
  /// untouched. Call at most once, before any timed iteration.
  fault::FaultInjector& enable_fault_injection(const fault::FaultPlan& plan);

  /// The injector, or null when fault injection is off (the default).
  [[nodiscard]] fault::FaultInjector* fault_injector() {
    return fault_.get();
  }

  /// Builds the line-grain MSI/MESI coherence model (validated against
  /// the machine geometry) and attaches it to the memory system, which
  /// from then on classifies hits and misses per line instead of per
  /// page (see memsys/line_model.hpp). When tracing is on, coherence
  /// events get their own "coherence" lane; like the fault lane it is
  /// registered at enable time, so enable coherence *before* tracing to
  /// get the canonical lane order (…, upmlib, coherence, …). Call at
  /// most once, before any access.
  coherence::CoherenceModel& enable_coherence(
      const coherence::CoherenceConfig& config);

  /// The model, or null when coherence is off (the default -- all
  /// page-grain behaviour and digests are untouched).
  [[nodiscard]] coherence::CoherenceModel* coherence_model() {
    return coherence_.get();
  }

  /// The sink, or null when tracing is off (the zero-overhead default).
  [[nodiscard]] trace::TraceSink* trace_sink() { return trace_sink_.get(); }

  /// Releases ownership of the sink to the caller (so results can
  /// outlive the machine). The machine's components keep their raw
  /// pointers, so only call this once the machine is done running.
  [[nodiscard]] std::unique_ptr<trace::TraceSink> take_trace_sink() {
    return std::move(trace_sink_);
  }

  /// Lane reserved for a UPMlib instance attached to this machine
  /// (UPMlib is constructed by the caller; pass this to
  /// upm::Upmlib::set_trace). Only meaningful after enable_tracing().
  [[nodiscard]] std::uint16_t upm_trace_lane() const { return upm_lane_; }

  [[nodiscard]] const memsys::MachineConfig& config() const {
    return config_;
  }
  [[nodiscard]] topo::Topology& topology() { return *topology_; }
  [[nodiscard]] os::Kernel& kernel() { return *kernel_; }
  [[nodiscard]] memsys::MemorySystem& memory() { return *memory_; }
  [[nodiscard]] os::MemoryControlInterface& mmci() { return *mmci_; }
  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] Runtime& runtime() { return *runtime_; }
  [[nodiscard]] vm::AddressSpace& address_space() { return *address_space_; }

 private:
  Machine() = default;

  memsys::MachineConfig config_;
  std::unique_ptr<topo::Topology> topology_;
  std::unique_ptr<os::Kernel> kernel_;
  std::unique_ptr<memsys::MemorySystem> memory_;
  std::unique_ptr<os::MemoryControlInterface> mmci_;
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<Runtime> runtime_;
  std::unique_ptr<vm::AddressSpace> address_space_;
  std::unique_ptr<trace::TraceSink> trace_sink_;
  std::unique_ptr<fault::FaultInjector> fault_;
  std::unique_ptr<coherence::CoherenceModel> coherence_;
  std::uint16_t upm_lane_ = 0;
};

}  // namespace repro::omp
