// One-stop assembly of the simulated machine: topology, kernel, memory
// system, MMCI, simulation engine and OpenMP runtime, wired together
// with consistent lifetimes. This is the entry point of the public API:
//
//   auto machine = repro::omp::Machine::create({});       // 16-node O2K
//   machine->set_placement("rr", /*seed=*/42);
//   machine->enable_kernel_daemon({});                    // DSM_MIGRATION
//   auto& rt = machine->runtime();
//   ... build and run parallel regions ...
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "repro/memsys/config.hpp"
#include "repro/memsys/memory_system.hpp"
#include "repro/omp/runtime.hpp"
#include "repro/os/daemon.hpp"
#include "repro/os/kernel.hpp"
#include "repro/os/mmci.hpp"
#include "repro/sim/engine.hpp"
#include "repro/topology/topology.hpp"
#include "repro/vm/address_space.hpp"

namespace repro::omp {

class Machine {
 public:
  /// Builds a machine from `config` (validated). The OpenMP team size
  /// defaults to one thread per processor.
  [[nodiscard]] static std::unique_ptr<Machine> create(
      const memsys::MachineConfig& config);

  /// Selects the page placement policy by paper name
  /// ("ft" | "rr" | "rand" | "wc"); the DSM_PLACEMENT equivalent.
  void set_placement(const std::string& name, std::uint64_t seed = 0);

  /// Enables the IRIX-style kernel migration daemon (DSM_MIGRATION).
  void enable_kernel_daemon(const os::DaemonConfig& config);

  [[nodiscard]] const memsys::MachineConfig& config() const {
    return config_;
  }
  [[nodiscard]] topo::Topology& topology() { return *topology_; }
  [[nodiscard]] os::Kernel& kernel() { return *kernel_; }
  [[nodiscard]] memsys::MemorySystem& memory() { return *memory_; }
  [[nodiscard]] os::MemoryControlInterface& mmci() { return *mmci_; }
  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] Runtime& runtime() { return *runtime_; }
  [[nodiscard]] vm::AddressSpace& address_space() { return *address_space_; }

 private:
  Machine() = default;

  memsys::MachineConfig config_;
  std::unique_ptr<topo::Topology> topology_;
  std::unique_ptr<os::Kernel> kernel_;
  std::unique_ptr<memsys::MemorySystem> memory_;
  std::unique_ptr<os::MemoryControlInterface> mmci_;
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<Runtime> runtime_;
  std::unique_ptr<vm::AddressSpace> address_space_;
};

}  // namespace repro::omp
