// Deterministic task parallelism over the simulated machine.
//
// OpenMP 3.0-style explicit tasks, modelled the only way a reproducible
// simulator can: the work-stealing schedule is a *pure function* of
// (task list, seed, topology, thread binding), computed up front, and
// the chosen assignment is then compiled into ordinary per-thread
// RegionPrograms and executed through Runtime::run. Every downstream
// consumer -- region inspector, static advisor, tracer, fault injector,
// steady-state fast-forward -- sees task regions exactly like
// parallel_for regions, and the schedule is byte-identical across
// reruns and across the harness's --jobs counts (which only parallelize
// independent sweep cells on the host).
//
// The scheduler simulates per-thread work-stealing deques: a thread
// pops its own deque LIFO (newest first, the Cilk convention) and
// steals FIFO (oldest first) when empty. Victim selection is
// locality-aware: candidate victims are grouped by hop distance from
// the thief's node, nearest group first, and the starting position
// inside a group is a hash of (seed, thief, steal counter) -- randomized
// enough to spread contention, yet fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "repro/common/strong_id.hpp"
#include "repro/common/units.hpp"
#include "repro/omp/runtime.hpp"
#include "repro/sim/region.hpp"
#include "repro/topology/topology.hpp"

namespace repro::omp {

/// One explicit task of a single spawn wave.
struct TaskDesc {
  /// Deque the task is spawned onto (locality hint: the thread whose
  /// data the task touches; work-stealing moves it only when that
  /// thread is saturated).
  ThreadId home;
  /// Spawner's duration estimate, used as the scheduler's virtual-clock
  /// increment (values < 1 count as 1). Only relative magnitudes
  /// matter.
  Ns estimate = 1;
  /// Appends the task's ops to `builder` for the executing thread.
  std::function<void(ThreadId executor, sim::RegionBuilder& builder)> body;
};

/// Where one task ended up, in global execution order.
struct TaskAssignment {
  std::uint32_t task = 0;  ///< index into the spawn-order task list
  ThreadId executor;
  /// Set when the executor took the task from another thread's deque.
  bool stolen = false;
  ThreadId victim;               ///< deque it was taken from (== executor
                                 ///< when not stolen)
  std::uint64_t steal_count = 0; ///< thief's steal-order position
};

class TaskScheduler {
 public:
  /// `thread_nodes[t]` is the home node of thread t (the thief's
  /// distance metric); `seed` perturbs victim-scan starting points.
  TaskScheduler(const topo::Topology& topology,
                std::vector<NodeId> thread_nodes, std::uint64_t seed);

  /// Computes the complete execution schedule for one spawn wave.
  /// Pure: identical inputs yield an identical assignment sequence on
  /// every host, run and --jobs count.
  [[nodiscard]] std::vector<TaskAssignment> schedule(
      std::span<const TaskDesc> tasks) const;

  [[nodiscard]] std::size_t num_threads() const {
    return thread_nodes_.size();
  }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Victim scan order for `thief`: threads grouped by hop distance
  /// from the thief's node, nearest group first, ids ascending inside a
  /// group (exposed for tests; the per-steal hash only rotates the
  /// starting offset within each group).
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>& victim_groups(
      ThreadId thief) const;

 private:
  std::vector<NodeId> thread_nodes_;
  std::uint64_t seed_;
  /// [thief][group][rank] -> victim thread id.
  std::vector<std::vector<std::vector<std::uint32_t>>> groups_;
};

/// Compiles `assignments` into per-thread op streams: each executor's
/// tasks are appended in its execution order. The builder must come
/// from Runtime::make_region() (team-sized).
void build_task_region(sim::RegionBuilder& builder,
                       std::span<const TaskAssignment> assignments,
                       std::span<const TaskDesc> tasks);

/// Emits the task-protocol trace events at the runtime's current time:
/// one kTaskSpawn per task (spawn order) and one kTaskSteal per stolen
/// assignment (execution order). No-op when tracing is off. Call once
/// per executed task region, right before Runtime::run, so every
/// iteration's trace shows its schedule like barriers show joins.
void emit_task_events(Runtime& rt, std::span<const TaskAssignment> assignments,
                      std::span<const TaskDesc> tasks);

/// Convenience single-shot path: schedule, trace, compile and run
/// `tasks` as one parallel region named `name`. Workloads that run the
/// same task wave every iteration should instead cache the schedule and
/// compiled program themselves (both are pure) and call
/// emit_task_events + Runtime::run per iteration.
sim::RegionResult run_tasks(Runtime& rt, const TaskScheduler& scheduler,
                            const std::string& name,
                            std::span<const TaskDesc> tasks);

}  // namespace repro::omp
