// The OpenMP-like runtime: fork/join parallel regions over the
// simulated machine, with named-region timing used by the experiment
// harness (phase durations drive the record-replay evaluation).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "repro/common/hash.hpp"
#include "repro/common/strong_id.hpp"
#include "repro/common/units.hpp"
#include "repro/fault/injector.hpp"
#include "repro/omp/schedule.hpp"
#include "repro/sim/engine.hpp"
#include "repro/sim/region.hpp"
#include "repro/trace/sink.hpp"

namespace repro::omp {

/// Record of one executed parallel region.
struct RegionRecord {
  std::string name;
  Ns start = 0;
  Ns end = 0;
  double imbalance = 1.0;

  [[nodiscard]] Ns duration() const { return end - start; }
};

class Runtime {
 public:
  /// One simulated OpenMP thread per processor, bound 1:1.
  Runtime(sim::Engine& engine, std::size_t num_threads);

  [[nodiscard]] std::size_t num_threads() const { return num_threads_; }
  [[nodiscard]] Ns now() const { return now_; }

  /// Creates an empty region builder sized for this team.
  [[nodiscard]] sim::RegionBuilder make_region() const;

  /// Fork/join: runs a compiled region program at the current time and
  /// advances the clock past the join barrier. The program is reusable
  /// -- benchmark phases compile once and run it every iteration.
  sim::RegionResult run(const std::string& name,
                        const sim::RegionProgram& program);

  /// Fork/join on a freshly built region (compiles and runs once).
  sim::RegionResult run(const std::string& name, sim::RegionBuilder&& region);

  /// PARALLEL DO: `emit(t, chunk, region)` is called for every chunk of
  /// [0, n) assigned to thread t by `schedule`, then the region runs.
  using ChunkEmitter =
      std::function<void(ThreadId, ChunkRange, sim::RegionBuilder&)>;
  sim::RegionResult parallel_for(const std::string& name, std::uint64_t n,
                                 const Schedule& schedule,
                                 const ChunkEmitter& emit);

  /// PARALLEL DO with a REDUCTION clause: like parallel_for, plus the
  /// cost of the log-tree combine across the team charged after the
  /// join barrier.
  sim::RegionResult parallel_reduce(const std::string& name,
                                    std::uint64_t n,
                                    const Schedule& schedule,
                                    const ChunkEmitter& emit);

  /// Per-level cost of the reduction combine tree (default 200 ns per
  /// level: one cache-to-cache transfer plus the add).
  void set_reduction_step(Ns step) { reduction_step_ = step; }

  /// SECTIONS worksharing: each section is an independent block of
  /// code assigned to one thread; sections are dealt round-robin when
  /// there are more sections than threads.
  using SectionBody = std::function<void(ThreadId, sim::RegionBuilder&)>;
  sim::RegionResult sections(const std::string& name,
                             const std::vector<SectionBody>& bodies);

  /// Advances time in the sequential (master-only) part of the program;
  /// used to charge UPMlib invocation costs, which execute between
  /// parallel regions on the master thread.
  void advance(Ns duration) {
    now_ += duration;
    if (advance_observer_) {
      advance_observer_(duration);
    }
  }

  /// Dry-run (capture) mode: run() still hands every region's name,
  /// compiled program and thread binding to the inspector and appends a
  /// zero-duration record, but never reaches the engine -- no memory
  /// access, no page fault, no trace emission, no clock advance. The
  /// static placement advisor uses this to observe a workload's whole
  /// phase sequence without perturbing any machine state.
  void set_dry_run(bool on) { dry_run_ = on; }
  [[nodiscard]] bool dry_run() const { return dry_run_; }

  /// Thread-to-processor binding. Threads start bound 1:1 (thread t on
  /// processor t); the OS scheduler may rebind them (the case the
  /// paper's footnote 3 defers to its companion work on
  /// multiprogrammed systems).
  [[nodiscard]] ProcId proc_of(ThreadId thread) const;
  void rebind(ThreadId thread, ProcId proc);
  /// Swaps two threads' processors (a scheduler exchanging them).
  void swap_binding(ThreadId a, ThreadId b);

  /// Observer called with every region's name, compiled program and
  /// the current thread binding just before the engine executes them --
  /// the analyze-before-run hook (see repro::analysis). At most one
  /// inspector; pass an empty function to detach.
  using RegionInspector =
      std::function<void(const std::string&, const sim::RegionProgram&,
                         std::span<const ProcId>)>;
  void set_region_inspector(RegionInspector inspector) {
    inspector_ = std::move(inspector);
  }

  /// Second observer slot with the same signature and firing point as
  /// the inspector (every region dispatch, dry-run included): the
  /// trace-dump recorder (see sim::TraceRecorder). Separate from the
  /// inspector so dumping composes with the analyzer. At most one;
  /// empty detaches.
  void set_region_recorder(RegionInspector recorder) {
    recorder_ = std::move(recorder);
  }

  /// Observer of every sequential-time advance() (the master-thread
  /// charges between regions); the trace recorder needs them to
  /// reproduce the exact clock on replay. Empty detaches.
  using AdvanceObserver = std::function<void(Ns)>;
  void set_advance_observer(AdvanceObserver observer) {
    advance_observer_ = std::move(observer);
  }

  /// Attaches the event sink (null to detach). Every executed region
  /// emits kRegionBegin/kRegionEnd on `lane` with the sink's phase set
  /// to the interned region name for the region's whole span (so
  /// kernel/daemon events fired inside the region inherit it), one
  /// kBarrierWait per thread at the join (a = time spent waiting), and
  /// one kQueueSample per node on `memsys_lane` taken at the join point
  /// -- never on the per-access hot path.
  void set_trace(trace::TraceSink* sink, std::uint16_t lane,
                 std::uint16_t memsys_lane) {
    trace_ = sink;
    trace_lane_ = lane;
    memsys_lane_ = memsys_lane;
  }

  /// The attached sink and runtime lane (null when tracing is off);
  /// lets cooperating layers (the task scheduler) emit their protocol
  /// events on the same lane as the region machinery.
  [[nodiscard]] trace::TraceSink* trace_sink() const { return trace_; }
  [[nodiscard]] std::uint16_t trace_lane() const { return trace_lane_; }

  /// Attaches the fault injector's preemption hook: a fired fault
  /// stretches one thread's region time past the computed join (null
  /// to detach). The injector must outlive the runtime.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_ = injector;
  }

  /// Timing log of all executed regions, in order.
  [[nodiscard]] const std::vector<RegionRecord>& records() const {
    return records_;
  }

  /// Sum of durations of all records whose name matches exactly.
  [[nodiscard]] Ns total_time(const std::string& name) const;

  void clear_records() { records_.clear(); }

  /// Appends a synthesized record (the harness's steady-state
  /// fast-forward re-stamps the cached iteration's records instead of
  /// executing their regions).
  void append_record(RegionRecord record) {
    records_.push_back(std::move(record));
  }

  /// Digest of the runtime state future executions depend on: the
  /// clock is excluded (the fast-forward gate compares *relative*
  /// per-iteration behaviour), the thread binding is what matters.
  [[nodiscard]] std::uint64_t digest() const {
    StateHash hash;
    hash.mix(binding_.size());
    for (const ProcId proc : binding_) {
      hash.mix(proc.value());
    }
    hash.mix(static_cast<std::uint64_t>(reduction_step_));
    return hash.value();
  }

 private:
  sim::Engine* engine_;
  std::size_t num_threads_;
  Ns now_ = 0;
  std::vector<ProcId> binding_;
  Ns reduction_step_ = 200;
  bool dry_run_ = false;
  RegionInspector inspector_;
  RegionInspector recorder_;
  AdvanceObserver advance_observer_;
  std::vector<RegionRecord> records_;
  fault::FaultInjector* fault_ = nullptr;
  trace::TraceSink* trace_ = nullptr;
  std::uint16_t trace_lane_ = 0;
  std::uint16_t memsys_lane_ = 0;
};

}  // namespace repro::omp
