// Interconnect topologies.
//
// The paper's machine is an SGI Origin2000: nodes are attached in pairs
// to routers, and the routers form a (fat) hypercube. What the memory
// model needs from the topology is only the *hop distance* between the
// node issuing a memory access and the node homing the page, because the
// latency ladder (paper Table 1) is indexed by hops. Ring and crossbar
// variants exist for the ablation benches; the hierarchical tree models
// modern socket/die/node machines for the scale sweeps.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "repro/common/strong_id.hpp"

namespace repro::topo {

/// Abstract interconnect. Implementations must be pure functions of the
/// node pair (no internal state), so they are safe to share.
class Topology {
 public:
  virtual ~Topology() = default;

  [[nodiscard]] virtual std::size_t num_nodes() const = 0;

  /// Network hops between two nodes; 0 iff `a == b`.
  [[nodiscard]] virtual unsigned hops(NodeId a, NodeId b) const = 0;

  /// Largest value `hops` can return for this instance.
  [[nodiscard]] virtual unsigned max_hops() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Origin2000-style fat hypercube: two nodes per router; routers form a
/// binary hypercube. The hop count between distinct nodes is
/// max(1, hamming(router_a, router_b)), which reproduces the 1..3 hop
/// range of the paper's 16-node system (8 routers, dimension 3).
class FatHypercube final : public Topology {
 public:
  /// Throws std::invalid_argument unless `num_nodes` is a power of two
  /// and at least 2 (configuration input, not a programming error).
  explicit FatHypercube(std::size_t num_nodes);

  [[nodiscard]] std::size_t num_nodes() const override { return num_nodes_; }
  [[nodiscard]] unsigned hops(NodeId a, NodeId b) const override;
  [[nodiscard]] unsigned max_hops() const override;
  [[nodiscard]] std::string name() const override { return "fat-hypercube"; }

  /// Router hosting a node (two nodes per router).
  [[nodiscard]] std::uint32_t router_of(NodeId n) const;

  /// Hypercube dimension of the router network.
  [[nodiscard]] unsigned dimension() const { return dimension_; }

 private:
  std::size_t num_nodes_;
  unsigned dimension_;
};

/// Bidirectional ring; hop count is the shorter way around. Used by the
/// topology ablation (rings have much larger diameters, magnifying the
/// cost of bad placement).
class Ring final : public Topology {
 public:
  /// Throws std::invalid_argument when `num_nodes` < 2.
  explicit Ring(std::size_t num_nodes);

  [[nodiscard]] std::size_t num_nodes() const override { return num_nodes_; }
  [[nodiscard]] unsigned hops(NodeId a, NodeId b) const override;
  [[nodiscard]] unsigned max_hops() const override;
  [[nodiscard]] std::string name() const override { return "ring"; }

 private:
  std::size_t num_nodes_;
};

/// Full crossbar: every remote access is exactly one hop (a dance-hall
/// UMA-like network). Used to ablate the distance component out of the
/// latency model while keeping the local/remote split.
class Crossbar final : public Topology {
 public:
  /// Throws std::invalid_argument when `num_nodes` < 2.
  explicit Crossbar(std::size_t num_nodes);

  [[nodiscard]] std::size_t num_nodes() const override { return num_nodes_; }
  [[nodiscard]] unsigned hops(NodeId a, NodeId b) const override;
  [[nodiscard]] unsigned max_hops() const override { return 1; }
  [[nodiscard]] std::string name() const override { return "crossbar"; }

 private:
  std::size_t num_nodes_;
};

/// Hierarchical machine tree (e.g. sockets=8, dies=2, nodes=4 -> 64
/// logical nodes). Leaves are the logical nodes; levels are declared
/// outermost first, and leaf ids enumerate the tree in level order
/// (node id = ((socket * dies) + die) * nodes + node for the example).
///
/// The distance between two leaves is the sum of the per-level hop
/// costs along the path from their lowest common ancestor's level down
/// to the leaves: two nodes sharing every level but the innermost are
/// one innermost-crossing apart, while nodes in different outermost
/// groups pay every level's cost. With the default cost of 1 per level
/// this yields distances 1..num_levels(), a direct generalization of
/// the fat hypercube's 1..3 ladder.
class HierarchicalTopology final : public Topology {
 public:
  struct Level {
    /// Children per tree vertex at this level (>= 2).
    std::size_t arity = 0;
    /// Hop cost of crossing this level's boundary (>= 1).
    unsigned hop_cost = 1;
  };

  /// Levels are outermost first. Throws std::invalid_argument unless
  /// there is at least one level, every arity is >= 2 and every hop
  /// cost is >= 1.
  explicit HierarchicalTopology(std::vector<Level> levels);

  [[nodiscard]] std::size_t num_nodes() const override { return num_nodes_; }
  [[nodiscard]] unsigned hops(NodeId a, NodeId b) const override;
  [[nodiscard]] unsigned max_hops() const override;
  /// Canonical spec: "hier:8x2x4", with "@c0,c1,..." appended when any
  /// hop cost differs from 1 (round-trips through parse_topology).
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t num_levels() const { return levels_.size(); }
  [[nodiscard]] const std::vector<Level>& levels() const { return levels_; }

  /// Depth of the lowest common ancestor of two leaves: 0 when they
  /// differ already in the outermost level, num_levels() when a == b.
  [[nodiscard]] std::size_t lca_depth(NodeId a, NodeId b) const;

 private:
  std::vector<Level> levels_;
  /// Leaves per subtree rooted at each level (stride of that level's
  /// coordinate in the leaf id).
  std::vector<std::size_t> stride_;
  /// cost_from_[k] = sum of hop costs of levels k..last: the distance
  /// between leaves whose first differing level is k.
  std::vector<unsigned> cost_from_;
  std::size_t num_nodes_ = 0;
};

/// A parsed --topology specification: the canonical name to store in
/// MachineConfig::topology (accepted by make_topology) plus the node
/// count the spec implies.
struct ParsedTopology {
  std::string name;
  std::size_t num_nodes = 0;
};

/// Parses a --topology string. Grammar:
///
///   fat-hypercube[:N] | ring[:N] | crossbar[:N]
///     | hier:A x B x ... [@c0,c1,...]
///     | hier:label=A,label=B,... [@c0,c1,...]
///
/// Flat topologies without ":N" keep `default_nodes`. A hier spec's
/// node count is the product of its arities; labels (e.g.
/// "sockets=8,dies=2,nodes=4") are documentation only and normalize to
/// the numeric form. Throws std::invalid_argument with a one-line
/// message on any malformed spec, so CLI flags fail fast.
[[nodiscard]] ParsedTopology parse_topology(const std::string& spec,
                                            std::size_t default_nodes);

/// Factory by canonical name ("fat-hypercube", "ring", "crossbar", or a
/// full "hier:..." spec whose arity product must equal `num_nodes`).
/// Throws std::invalid_argument on unknown names and invalid sizes.
[[nodiscard]] std::unique_ptr<Topology> make_topology(const std::string& name,
                                                      std::size_t num_nodes);

}  // namespace repro::topo
