// Interconnect topologies.
//
// The paper's machine is an SGI Origin2000: nodes are attached in pairs
// to routers, and the routers form a (fat) hypercube. What the memory
// model needs from the topology is only the *hop distance* between the
// node issuing a memory access and the node homing the page, because the
// latency ladder (paper Table 1) is indexed by hops. Ring and crossbar
// variants exist for the ablation benches.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "repro/common/strong_id.hpp"

namespace repro::topo {

/// Abstract interconnect. Implementations must be pure functions of the
/// node pair (no internal state), so they are safe to share.
class Topology {
 public:
  virtual ~Topology() = default;

  [[nodiscard]] virtual std::size_t num_nodes() const = 0;

  /// Network hops between two nodes; 0 iff `a == b`.
  [[nodiscard]] virtual unsigned hops(NodeId a, NodeId b) const = 0;

  /// Largest value `hops` can return for this instance.
  [[nodiscard]] virtual unsigned max_hops() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Origin2000-style fat hypercube: two nodes per router; routers form a
/// binary hypercube. The hop count between distinct nodes is
/// max(1, hamming(router_a, router_b)), which reproduces the 1..3 hop
/// range of the paper's 16-node system (8 routers, dimension 3).
class FatHypercube final : public Topology {
 public:
  /// `num_nodes` must be a power of two and at least 2.
  explicit FatHypercube(std::size_t num_nodes);

  [[nodiscard]] std::size_t num_nodes() const override { return num_nodes_; }
  [[nodiscard]] unsigned hops(NodeId a, NodeId b) const override;
  [[nodiscard]] unsigned max_hops() const override;
  [[nodiscard]] std::string name() const override { return "fat-hypercube"; }

  /// Router hosting a node (two nodes per router).
  [[nodiscard]] std::uint32_t router_of(NodeId n) const;

  /// Hypercube dimension of the router network.
  [[nodiscard]] unsigned dimension() const { return dimension_; }

 private:
  std::size_t num_nodes_;
  unsigned dimension_;
};

/// Bidirectional ring; hop count is the shorter way around. Used by the
/// topology ablation (rings have much larger diameters, magnifying the
/// cost of bad placement).
class Ring final : public Topology {
 public:
  explicit Ring(std::size_t num_nodes);

  [[nodiscard]] std::size_t num_nodes() const override { return num_nodes_; }
  [[nodiscard]] unsigned hops(NodeId a, NodeId b) const override;
  [[nodiscard]] unsigned max_hops() const override;
  [[nodiscard]] std::string name() const override { return "ring"; }

 private:
  std::size_t num_nodes_;
};

/// Full crossbar: every remote access is exactly one hop (a dance-hall
/// UMA-like network). Used to ablate the distance component out of the
/// latency model while keeping the local/remote split.
class Crossbar final : public Topology {
 public:
  explicit Crossbar(std::size_t num_nodes);

  [[nodiscard]] std::size_t num_nodes() const override { return num_nodes_; }
  [[nodiscard]] unsigned hops(NodeId a, NodeId b) const override;
  [[nodiscard]] unsigned max_hops() const override { return 1; }
  [[nodiscard]] std::string name() const override { return "crossbar"; }

 private:
  std::size_t num_nodes_;
};

/// Factory by name ("fat-hypercube", "ring", "crossbar").
[[nodiscard]] std::unique_ptr<Topology> make_topology(const std::string& name,
                                                      std::size_t num_nodes);

}  // namespace repro::topo
