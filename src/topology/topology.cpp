#include "repro/topology/topology.hpp"

#include <bit>

#include "repro/common/assert.hpp"

namespace repro::topo {

namespace {

void check_node(const Topology& t, NodeId n) {
  REPRO_REQUIRE(n.value() < t.num_nodes());
}

}  // namespace

FatHypercube::FatHypercube(std::size_t num_nodes) : num_nodes_(num_nodes) {
  REPRO_REQUIRE(num_nodes >= 2);
  REPRO_REQUIRE_MSG(std::has_single_bit(num_nodes),
                    "fat hypercube size must be a power of two");
  const std::size_t routers = num_nodes_ / 2;
  dimension_ = routers <= 1
                   ? 0
                   : static_cast<unsigned>(std::bit_width(routers - 1));
}

std::uint32_t FatHypercube::router_of(NodeId n) const {
  check_node(*this, n);
  return n.value() / 2;
}

unsigned FatHypercube::hops(NodeId a, NodeId b) const {
  check_node(*this, a);
  check_node(*this, b);
  if (a == b) {
    return 0;
  }
  const std::uint32_t ra = router_of(a);
  const std::uint32_t rb = router_of(b);
  const auto hamming = static_cast<unsigned>(std::popcount(ra ^ rb));
  // Two nodes behind the same router are still one router traversal
  // apart; otherwise each differing hypercube dimension is one link.
  return hamming == 0 ? 1 : hamming;
}

unsigned FatHypercube::max_hops() const {
  return dimension_ == 0 ? 1 : dimension_;
}

Ring::Ring(std::size_t num_nodes) : num_nodes_(num_nodes) {
  REPRO_REQUIRE(num_nodes >= 2);
}

unsigned Ring::hops(NodeId a, NodeId b) const {
  check_node(*this, a);
  check_node(*this, b);
  const auto d = static_cast<std::size_t>(
      a.value() > b.value() ? a.value() - b.value() : b.value() - a.value());
  return static_cast<unsigned>(std::min(d, num_nodes_ - d));
}

unsigned Ring::max_hops() const {
  return static_cast<unsigned>(num_nodes_ / 2);
}

Crossbar::Crossbar(std::size_t num_nodes) : num_nodes_(num_nodes) {
  REPRO_REQUIRE(num_nodes >= 2);
}

unsigned Crossbar::hops(NodeId a, NodeId b) const {
  check_node(*this, a);
  check_node(*this, b);
  return a == b ? 0 : 1;
}

std::unique_ptr<Topology> make_topology(const std::string& name,
                                        std::size_t num_nodes) {
  if (name == "fat-hypercube") {
    return std::make_unique<FatHypercube>(num_nodes);
  }
  if (name == "ring") {
    return std::make_unique<Ring>(num_nodes);
  }
  if (name == "crossbar") {
    return std::make_unique<Crossbar>(num_nodes);
  }
  REPRO_UNREACHABLE("unknown topology name");
}

}  // namespace repro::topo
