#include "repro/topology/topology.hpp"

#include <bit>
#include <sstream>
#include <stdexcept>

#include "repro/common/assert.hpp"

namespace repro::topo {

namespace {

void check_node(const Topology& t, NodeId n) {
  REPRO_REQUIRE(n.value() < t.num_nodes());
}

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("bad topology \"" + spec + "\": " + why);
}

/// Strict decimal parse for spec fragments; rejects signs, leading
/// garbage, trailing garbage and overflow.
std::uint64_t parse_number(const std::string& spec, const std::string& text,
                           const char* what) {
  if (text.empty()) {
    bad_spec(spec, std::string("missing ") + what);
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      bad_spec(spec, std::string("malformed ") + what + " \"" + text + "\"");
    }
    if (value > (UINT64_MAX - static_cast<std::uint64_t>(c - '0')) / 10) {
      bad_spec(spec, std::string(what) + " \"" + text + "\" out of range");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

/// Parses the part after "hier:" into levels; `spec` is the full
/// string, used for error messages only.
std::vector<HierarchicalTopology::Level> parse_levels(
    const std::string& spec, const std::string& params) {
  if (params.empty()) {
    bad_spec(spec, "hier needs a level list (e.g. hier:8x2x4)");
  }
  std::string arity_part = params;
  std::string cost_part;
  if (const std::size_t at = params.find('@'); at != std::string::npos) {
    arity_part = params.substr(0, at);
    cost_part = params.substr(at + 1);
    if (cost_part.empty()) {
      bad_spec(spec, "empty hop-cost list after '@'");
    }
  }
  // "sockets=8,dies=2,nodes=4" (labels are documentation only) or the
  // compact "8x2x4".
  const bool named = arity_part.find('=') != std::string::npos;
  std::vector<HierarchicalTopology::Level> levels;
  for (const std::string& field : split(arity_part, named ? ',' : 'x')) {
    std::string number = field;
    if (named) {
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos || eq == 0) {
        bad_spec(spec, "level \"" + field + "\" is not label=arity");
      }
      number = field.substr(eq + 1);
    }
    HierarchicalTopology::Level level;
    level.arity =
        static_cast<std::size_t>(parse_number(spec, number, "level arity"));
    levels.push_back(level);
  }
  if (!cost_part.empty()) {
    const std::vector<std::string> costs = split(cost_part, ',');
    if (costs.size() != levels.size()) {
      bad_spec(spec, "expected " + std::to_string(levels.size()) +
                         " hop costs, got " + std::to_string(costs.size()));
    }
    for (std::size_t i = 0; i < costs.size(); ++i) {
      levels[i].hop_cost =
          static_cast<unsigned>(parse_number(spec, costs[i], "hop cost"));
    }
  }
  return levels;
}

}  // namespace

FatHypercube::FatHypercube(std::size_t num_nodes) : num_nodes_(num_nodes) {
  // Configuration input (CLI / MachineConfig), not a caller bug:
  // invalid sizes must surface as std::invalid_argument so the harness
  // can print a usage-style error instead of a contract trace.
  if (num_nodes < 2) {
    throw std::invalid_argument("fat-hypercube needs at least 2 nodes, got " +
                                std::to_string(num_nodes));
  }
  if (!std::has_single_bit(num_nodes)) {
    throw std::invalid_argument(
        "fat-hypercube size must be a power of two, got " +
        std::to_string(num_nodes));
  }
  const std::size_t routers = num_nodes_ / 2;
  dimension_ = routers <= 1
                   ? 0
                   : static_cast<unsigned>(std::bit_width(routers - 1));
}

std::uint32_t FatHypercube::router_of(NodeId n) const {
  check_node(*this, n);
  return n.value() / 2;
}

unsigned FatHypercube::hops(NodeId a, NodeId b) const {
  check_node(*this, a);
  check_node(*this, b);
  if (a == b) {
    return 0;
  }
  const std::uint32_t ra = router_of(a);
  const std::uint32_t rb = router_of(b);
  const auto hamming = static_cast<unsigned>(std::popcount(ra ^ rb));
  // Two nodes behind the same router are still one router traversal
  // apart; otherwise each differing hypercube dimension is one link.
  return hamming == 0 ? 1 : hamming;
}

unsigned FatHypercube::max_hops() const {
  return dimension_ == 0 ? 1 : dimension_;
}

Ring::Ring(std::size_t num_nodes) : num_nodes_(num_nodes) {
  if (num_nodes < 2) {
    throw std::invalid_argument("ring needs at least 2 nodes, got " +
                                std::to_string(num_nodes));
  }
}

unsigned Ring::hops(NodeId a, NodeId b) const {
  check_node(*this, a);
  check_node(*this, b);
  const auto d = static_cast<std::size_t>(
      a.value() > b.value() ? a.value() - b.value() : b.value() - a.value());
  return static_cast<unsigned>(std::min(d, num_nodes_ - d));
}

unsigned Ring::max_hops() const {
  return static_cast<unsigned>(num_nodes_ / 2);
}

Crossbar::Crossbar(std::size_t num_nodes) : num_nodes_(num_nodes) {
  if (num_nodes < 2) {
    throw std::invalid_argument("crossbar needs at least 2 nodes, got " +
                                std::to_string(num_nodes));
  }
}

unsigned Crossbar::hops(NodeId a, NodeId b) const {
  check_node(*this, a);
  check_node(*this, b);
  return a == b ? 0 : 1;
}

HierarchicalTopology::HierarchicalTopology(std::vector<Level> levels)
    : levels_(std::move(levels)) {
  if (levels_.empty()) {
    throw std::invalid_argument("hier topology needs at least one level");
  }
  num_nodes_ = 1;
  for (const Level& level : levels_) {
    if (level.arity < 2) {
      throw std::invalid_argument("hier level arity must be at least 2, got " +
                                  std::to_string(level.arity));
    }
    if (level.hop_cost < 1) {
      throw std::invalid_argument("hier hop cost must be at least 1");
    }
    if (num_nodes_ > (SIZE_MAX / 2) / level.arity) {
      throw std::invalid_argument("hier topology has too many nodes");
    }
    num_nodes_ *= level.arity;
  }
  // Suffix products / sums, innermost level last: stride_[k] is how
  // many leaves one level-k subtree holds, cost_from_[k] the distance
  // of two leaves first differing at level k.
  stride_.assign(levels_.size(), 1);
  cost_from_.assign(levels_.size(), 0);
  std::size_t stride = 1;
  unsigned cost = 0;
  for (std::size_t k = levels_.size(); k-- > 0;) {
    cost += levels_[k].hop_cost;
    cost_from_[k] = cost;
    stride_[k] = stride;
    stride *= levels_[k].arity;
  }
}

std::size_t HierarchicalTopology::lca_depth(NodeId a, NodeId b) const {
  check_node(*this, a);
  check_node(*this, b);
  for (std::size_t k = 0; k < levels_.size(); ++k) {
    // Equal level-k subtree ids means all coordinates above k agree
    // too, so the first differing level is the LCA's depth.
    if (a.value() / stride_[k] != b.value() / stride_[k]) {
      return k;
    }
  }
  return levels_.size();
}

unsigned HierarchicalTopology::hops(NodeId a, NodeId b) const {
  const std::size_t depth = lca_depth(a, b);
  return depth == levels_.size() ? 0 : cost_from_[depth];
}

unsigned HierarchicalTopology::max_hops() const { return cost_from_[0]; }

std::string HierarchicalTopology::name() const {
  std::ostringstream out;
  out << "hier:";
  bool default_costs = true;
  for (std::size_t k = 0; k < levels_.size(); ++k) {
    out << (k == 0 ? "" : "x") << levels_[k].arity;
    default_costs = default_costs && levels_[k].hop_cost == 1;
  }
  if (!default_costs) {
    out << '@';
    for (std::size_t k = 0; k < levels_.size(); ++k) {
      out << (k == 0 ? "" : ",") << levels_[k].hop_cost;
    }
  }
  return out.str();
}

ParsedTopology parse_topology(const std::string& spec,
                              std::size_t default_nodes) {
  std::string head = spec;
  std::string params;
  if (const std::size_t colon = spec.find(':'); colon != std::string::npos) {
    head = spec.substr(0, colon);
    params = spec.substr(colon + 1);
  }
  if (head == "hier") {
    // Normalize through the class so labeled specs ("sockets=8,...")
    // and numeric ones canonicalize identically.
    const HierarchicalTopology topo(parse_levels(spec, params));
    return {topo.name(), topo.num_nodes()};
  }
  if (head != "fat-hypercube" && head != "ring" && head != "crossbar") {
    bad_spec(spec, "unknown topology \"" + head +
                       "\" (expected fat-hypercube, ring, crossbar or hier)");
  }
  std::size_t num_nodes = default_nodes;
  if (spec.find(':') != std::string::npos) {
    num_nodes =
        static_cast<std::size_t>(parse_number(spec, params, "node count"));
  }
  // Construct once to validate eagerly (e.g. fat-hypercube:12 must fail
  // at flag-parse time, not when the machine is built).
  static_cast<void>(make_topology(head, num_nodes));
  return {head, num_nodes};
}

std::unique_ptr<Topology> make_topology(const std::string& name,
                                        std::size_t num_nodes) {
  if (name == "fat-hypercube") {
    return std::make_unique<FatHypercube>(num_nodes);
  }
  if (name == "ring") {
    return std::make_unique<Ring>(num_nodes);
  }
  if (name == "crossbar") {
    return std::make_unique<Crossbar>(num_nodes);
  }
  if (name.rfind("hier:", 0) == 0) {
    auto topo = std::make_unique<HierarchicalTopology>(
        parse_levels(name, name.substr(5)));
    if (topo->num_nodes() != num_nodes) {
      throw std::invalid_argument(
          "topology \"" + name + "\" has " +
          std::to_string(topo->num_nodes()) + " nodes but the machine has " +
          std::to_string(num_nodes));
    }
    return topo;
  }
  throw std::invalid_argument("unknown topology name \"" + name + "\"");
}

}  // namespace repro::topo
