#include "repro/fault/service.hpp"

#include "repro/common/assert.hpp"
#include "repro/common/env.hpp"
#include "repro/common/hash.hpp"

namespace repro::fault {

const char* service_fault_class_name(ServiceFaultClass cls) {
  switch (cls) {
    case ServiceFaultClass::kWorkerAbort:
      return "worker_abort";
    case ServiceFaultClass::kWorkerHang:
      return "worker_hang";
    case ServiceFaultClass::kGarbledFrame:
      return "garbled_frame";
    case ServiceFaultClass::kTornFrame:
      return "torn_frame";
  }
  return "?";
}

bool ServiceFaultPlan::empty() const {
  return abort_rate == 0.0 && hang_rate == 0.0 && garble_rate == 0.0 &&
         torn_rate == 0.0;
}

void ServiceFaultPlan::set_rate(double rate) {
  abort_rate = rate;
  hang_rate = rate;
  garble_rate = rate;
  torn_rate = rate;
}

ServiceFaultPlan ServiceFaultPlan::from_env() {
  return from_env(ServiceFaultPlan{});
}

ServiceFaultPlan ServiceFaultPlan::from_env(ServiceFaultPlan defaults) {
  const Env& env = Env::global();
  defaults.seed = static_cast<std::uint64_t>(env.get_int(
      "REPRO_SERVICE_FAULT_SEED", static_cast<std::int64_t>(defaults.seed)));
  const double rate = env.get_double("REPRO_SERVICE_FAULT_RATE", -1.0);
  if (rate >= 0.0) {
    defaults.set_rate(rate);
  }
  defaults.abort_rate =
      env.get_double("REPRO_SERVICE_FAULT_ABORT_RATE", defaults.abort_rate);
  defaults.hang_rate =
      env.get_double("REPRO_SERVICE_FAULT_HANG_RATE", defaults.hang_rate);
  defaults.garble_rate =
      env.get_double("REPRO_SERVICE_FAULT_GARBLE_RATE", defaults.garble_rate);
  defaults.torn_rate =
      env.get_double("REPRO_SERVICE_FAULT_TORN_RATE", defaults.torn_rate);
  return defaults;
}

void ServiceFaultPlan::validate() const {
  const auto valid_rate = [](double r) { return r >= 0.0 && r <= 1.0; };
  REPRO_REQUIRE_MSG(valid_rate(abort_rate) && valid_rate(hang_rate) &&
                        valid_rate(garble_rate) && valid_rate(torn_rate),
                    "service fault rates must be probabilities in [0, 1]");
}

bool service_fault_fires(const ServiceFaultPlan& plan, ServiceFaultClass cls,
                         std::uint64_t identity, std::uint32_t attempt) {
  const double rate = cls == ServiceFaultClass::kWorkerAbort ? plan.abort_rate
                      : cls == ServiceFaultClass::kWorkerHang ? plan.hang_rate
                      : cls == ServiceFaultClass::kGarbledFrame
                          ? plan.garble_rate
                          : plan.torn_rate;
  if (rate <= 0.0) {
    return false;
  }
  if (rate >= 1.0) {
    return true;
  }
  StateHash h(plan.seed);
  h.mix(static_cast<std::uint64_t>(cls) + 1);
  h.mix(identity);
  h.mix(attempt);
  const std::uint64_t draw = avalanche64(h.value());
  // Top 53 bits -> uniform double in [0, 1).
  const double u =
      static_cast<double>(draw >> 11U) * 0x1.0p-53;
  return u < rate;
}

}  // namespace repro::fault
