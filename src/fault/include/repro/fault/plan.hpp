// Deterministic fault-injection plans.
//
// The paper's experiments run on a dedicated machine; UPMlib's whole
// selling point, though, is *adaptivity* -- so the simulator needs a
// perturbation dimension that stress-tests convergence without giving
// up reproducibility. A FaultPlan is the per-cell description of that
// perturbation: a seed, one Bernoulli rate per fault class and an
// iteration schedule. Every fault is *drawn*, never sampled from host
// state: the injector derives each decision from (seed, fault class,
// a monotone per-class draw counter), so a run with a given plan is
// byte-identical across --jobs counts, reruns and tracing on/off, and
// the injected events are replayable from the trace.
//
// Fault classes (see repro::fault::FaultClass):
//  * counter corruption -- the MMCI /proc counter reads UPMlib bases
//    its competitive criterion on return scaled (or zeroed) values;
//  * busy migrations -- a page is transiently pinned and the kernel's
//    move request returns BUSY instead of migrating;
//  * node slowdown -- a miss served by a node takes extra time and the
//    node's memory queue absorbs a pressure spike of phantom lines;
//  * thread preemption -- a processor loses its timeslice inside a
//    parallel region, stretching that thread's region time
//    (multiprogramming interference, paper footnote 3).
#pragma once

#include <cstdint>

#include "repro/common/units.hpp"

namespace repro::fault {

/// Fault classes, in draw-stream order. The numeric values are the `a`
/// payload of kFaultInjection trace events and index the injector's
/// per-class draw counters; append only.
enum class FaultClass : std::uint8_t {
  kCounterCorruption = 0,
  kMigrationBusy = 1,
  kNodeSlowdown = 2,
  kPreemption = 3,
};

inline constexpr std::size_t kNumFaultClasses = 4;

/// Stable lowercase identifier ("counter_corruption", ...).
[[nodiscard]] const char* fault_class_name(FaultClass cls);

struct FaultPlan {
  /// Root of every Bernoulli draw; two plans with different seeds
  /// produce independent fault streams at the same rates.
  std::uint64_t seed = 0x5eedfa17u;

  // --- per-class Bernoulli rates (probability per consultation) -----------
  /// Per MMCI counter read of one hot page.
  double counter_rate = 0.0;
  /// Per kernel migration request.
  double migration_busy_rate = 0.0;
  /// Per cache-miss batch.
  double slowdown_rate = 0.0;
  /// Per parallel region.
  double preemption_rate = 0.0;

  // --- per-class magnitudes ------------------------------------------------
  /// Corrupted counter reads return value * percent / 100; 0 zeroes
  /// the counters outright (the harshest corruption).
  std::uint32_t counter_scale_percent = 0;
  /// A page hit by a busy fault stays pinned for this many migration
  /// attempts (including the faulted one) before the pin clears.
  std::uint32_t busy_pin_attempts = 2;
  /// Extra service time charged to a slowed-down miss batch.
  Ns slowdown_ns = 400;
  /// Phantom lines pushed through the home node's memory queue by a
  /// slowdown fault (queue-pressure spike felt by later accesses).
  std::uint32_t spike_lines = 64;
  /// Timeslice lost by a preempted thread (stretches its region time).
  Ns preemption_ns = 50 * kNsPerUs;

  // --- schedule ------------------------------------------------------------
  /// First outer iteration (1-based) in which faults may fire;
  /// iteration 0 is setup/cold start and is fault-free by default.
  std::uint32_t active_from_iteration = 1;
  /// Last iteration in which faults may fire; 0 = no upper bound.
  std::uint32_t active_until_iteration = 0;

  /// True when every rate is zero: no injector is attached and the run
  /// is the byte-identical no-fault-subsystem run by construction.
  [[nodiscard]] bool empty() const;

  /// Sets all four class rates to `rate` (the --fault-rate knob).
  void set_rate(double rate);

  /// Largest of the four class rates (reporting).
  [[nodiscard]] double max_rate() const;

  /// Reads REPRO_FAULT_SEED / REPRO_FAULT_RATE plus the per-class
  /// REPRO_FAULT_{COUNTER,BUSY,SLOWDOWN,PREEMPT}_RATE overrides on top
  /// of `defaults`.
  [[nodiscard]] static FaultPlan from_env();
  [[nodiscard]] static FaultPlan from_env(FaultPlan defaults);

  /// Rates in [0, 1], magnitudes sane. Throws ContractViolation.
  void validate() const;
};

}  // namespace repro::fault
