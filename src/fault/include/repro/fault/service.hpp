// Service-class fault injection: perturbations of the sweep *service*
// (src/service) rather than of the simulated machine.
//
// The in-simulation classes (plan.hpp) stress UPMlib's convergence;
// these stress the daemon's robustness machinery -- worker-crash
// detection, deadline escalation, garbled-frame recovery, bounded
// re-dispatch. Like the simulation classes they are deterministic:
// whether a fault fires is a pure function of (seed, class, the
// cell's config-identity hash, the dispatch attempt number), never of
// host state, so a chaos run is reproducible and a retried dispatch
// sees an independent draw (a cell is not doomed by its identity).
//
// Classes:
//  * worker abort  -- the worker process _exit()s mid-cell; the daemon
//    sees pipe EOF + waitpid and must re-dispatch;
//  * worker hang   -- the worker stops responding; only the per-cell
//    deadline's SIGKILL escalation can reclaim the slot;
//  * garbled frame -- the worker's reply frame fails its digest fence;
//    the daemon must treat the worker as poisoned (the stream has lost
//    sync), kill it and re-dispatch;
//  * torn frame    -- the worker writes only a prefix of its reply and
//    then stops responding; the daemon must keep serving everyone else
//    with the partial frame buffered (never block on a worker socket)
//    until the deadline SIGKILL reclaims the slot.
#pragma once

#include <cstdint>

namespace repro::fault {

/// Service fault classes, in draw order. Values salt the decision
/// hash; append only.
enum class ServiceFaultClass : std::uint8_t {
  kWorkerAbort = 0,
  kWorkerHang = 1,
  kGarbledFrame = 2,
  kTornFrame = 3,
};

inline constexpr std::size_t kNumServiceFaultClasses = 4;

/// Stable lowercase identifier ("worker_abort", ...).
[[nodiscard]] const char* service_fault_class_name(ServiceFaultClass cls);

struct ServiceFaultPlan {
  /// Root of every decision; two plans with different seeds produce
  /// independent fault patterns at the same rates.
  std::uint64_t seed = 0x5e141ce5ull;

  /// Bernoulli rate per (cell, dispatch attempt) consultation.
  double abort_rate = 0.0;
  double hang_rate = 0.0;
  double garble_rate = 0.0;
  double torn_rate = 0.0;

  /// True when every rate is zero: workers never consult the plan.
  [[nodiscard]] bool empty() const;

  /// Sets every class rate to `rate`.
  void set_rate(double rate);

  /// Reads REPRO_SERVICE_FAULT_SEED / REPRO_SERVICE_FAULT_RATE plus
  /// the per-class REPRO_SERVICE_FAULT_{ABORT,HANG,GARBLE,TORN}_RATE
  /// overrides on top of `defaults`.
  [[nodiscard]] static ServiceFaultPlan from_env();
  [[nodiscard]] static ServiceFaultPlan from_env(ServiceFaultPlan defaults);

  /// Rates in [0, 1]. Throws ContractViolation.
  void validate() const;
};

/// The deterministic decision: does `cls` fire for dispatch attempt
/// `attempt` of the cell whose config-identity hash is `identity`?
/// Pure function of its arguments and plan.seed -- no draw counters,
/// so daemon and tests can evaluate it independently and agree.
[[nodiscard]] bool service_fault_fires(const ServiceFaultPlan& plan,
                                       ServiceFaultClass cls,
                                       std::uint64_t identity,
                                       std::uint32_t attempt);

}  // namespace repro::fault
