// Seeded deterministic fault injector (see plan.hpp for the model).
//
// One injector per Machine, consulted synchronously from the layer a
// fault class belongs to:
//  * MemoryControlInterface::read_counters -> filter_counters()
//  * Kernel::migrate_page                  -> migration_busy()
//  * MemorySystem miss path                -> on_miss()
//  * omp::Runtime region join              -> on_region()
//
// Determinism contract: every decision is a pure function of
// (plan.seed, fault class, per-class draw counter, salt). The counters
// advance only when a site consults the injector while the plan's
// iteration schedule is active, so the fault stream is reproduced
// exactly by any re-run of the same cell -- across --jobs counts,
// with or without tracing attached. The injector never reads host
// state (no clocks, no host RNG).
//
// The fast-forward interaction: digest() mixes the draw counters and
// the current iteration while the schedule can still fire, so the
// harness's steady-state gate (which requires digest periodicity)
// stays shut for any cell with a non-empty active plan -- replaying a
// block would skip scheduled draws, so declining is correctness, not
// conservatism.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "repro/common/strong_id.hpp"
#include "repro/common/units.hpp"
#include "repro/fault/plan.hpp"
#include "repro/trace/sink.hpp"

namespace repro::fault {

/// Cumulative injection accounting (one per injector; surfaces in
/// RunResult and BENCH_*.json).
struct FaultStats {
  std::uint64_t counter_corruptions = 0;
  std::uint64_t busy_rejections = 0;
  std::uint64_t slowdowns = 0;
  std::uint64_t preemptions = 0;
  /// Phantom lines pushed through memory queues by slowdown faults.
  std::uint64_t spike_lines = 0;
  Ns slowdown_ns_total = 0;
  Ns preemption_ns_total = 0;

  [[nodiscard]] std::uint64_t injected_total() const {
    return counter_corruptions + busy_rejections + slowdowns + preemptions;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Current outer iteration (0 = setup/cold start); gates the plan's
  /// schedule. Set by the harness at the top of every timed iteration.
  void set_iteration(std::uint32_t iteration) { iteration_ = iteration; }

  /// Attaches the event sink (null to detach): every injected fault
  /// becomes one kFaultInjection event (a = FaultClass, payloads per
  /// class). Decisions never depend on the sink.
  void set_trace(trace::TraceSink* sink, std::uint16_t lane) {
    sink_ = sink;
    lane_ = lane;
  }

  /// Counter-corruption hook (MMCI /proc reads). Returns `counts`
  /// untouched, or a corrupted copy (scaled by
  /// plan.counter_scale_percent, 0 = zeroed) living in an internal
  /// scratch buffer valid until the next filter_counters call.
  [[nodiscard]] std::span<const std::uint32_t> filter_counters(
      VPage page, std::span<const std::uint32_t> counts);

  /// Busy-migration hook (kernel migration primitive). True = the page
  /// is transiently pinned and the request must return BUSY. A fresh
  /// fault pins the page for plan.busy_pin_attempts attempts.
  [[nodiscard]] bool migration_busy(VPage page);

  struct MissFault {
    Ns extra_ns = 0;             ///< added to the miss batch's latency
    std::uint32_t extra_lines = 0;  ///< served through the home queue
  };
  /// Node-slowdown hook (memory-system miss path). `now` stamps the
  /// trace event only.
  [[nodiscard]] MissFault on_miss(NodeId home, std::uint32_t lines, Ns now);

  struct RegionFault {
    bool fired = false;
    std::uint32_t thread = 0;  ///< preempted thread index
    Ns stretch = 0;            ///< added to that thread's region time
  };
  /// Preemption hook (runtime region join). `region_end` stamps the
  /// trace event only.
  [[nodiscard]] RegionFault on_region(std::uint32_t num_threads,
                                      Ns region_end);

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Behavioural state digest mixed into the harness fast-forward
  /// snapshot: draw counters, pinned pages, and -- while the schedule
  /// can still fire -- the iteration number, which makes the digest
  /// aperiodic and keeps the fast-forward gate shut by construction.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  /// True while the plan's iteration schedule admits faults.
  [[nodiscard]] bool schedule_active() const;
  /// Next deterministic 64-bit value of a class's draw stream.
  std::uint64_t next_u64(FaultClass cls, std::uint64_t salt);
  /// One Bernoulli draw; advances the class counter iff consulted.
  [[nodiscard]] bool draw(FaultClass cls, double rate, std::uint64_t salt);
  void emit(FaultClass cls, Ns time, std::uint64_t page, std::uint64_t b,
            Ns cost, std::int32_t node);

  FaultPlan plan_;
  FaultStats stats_;
  /// Monotone per-class draw counters; the whole determinism scheme.
  std::array<std::uint64_t, kNumFaultClasses> draws_{};
  /// page -> remaining BUSY attempts of an active pin.
  std::unordered_map<std::uint64_t, std::uint32_t> pinned_;
  /// Scratch for corrupted counter reads (see filter_counters).
  std::vector<std::uint32_t> scratch_;
  std::uint32_t iteration_ = 0;
  trace::TraceSink* sink_ = nullptr;
  std::uint16_t lane_ = 0;
};

}  // namespace repro::fault
