#include "repro/fault/plan.hpp"

#include <algorithm>

#include "repro/common/assert.hpp"
#include "repro/common/env.hpp"

namespace repro::fault {

const char* fault_class_name(FaultClass cls) {
  switch (cls) {
    case FaultClass::kCounterCorruption:
      return "counter_corruption";
    case FaultClass::kMigrationBusy:
      return "migration_busy";
    case FaultClass::kNodeSlowdown:
      return "node_slowdown";
    case FaultClass::kPreemption:
      return "preemption";
  }
  return "?";
}

bool FaultPlan::empty() const {
  return counter_rate == 0.0 && migration_busy_rate == 0.0 &&
         slowdown_rate == 0.0 && preemption_rate == 0.0;
}

void FaultPlan::set_rate(double rate) {
  counter_rate = rate;
  migration_busy_rate = rate;
  slowdown_rate = rate;
  preemption_rate = rate;
}

double FaultPlan::max_rate() const {
  return std::max({counter_rate, migration_busy_rate, slowdown_rate,
                   preemption_rate});
}

FaultPlan FaultPlan::from_env() { return from_env(FaultPlan{}); }

FaultPlan FaultPlan::from_env(FaultPlan defaults) {
  const Env& env = Env::global();
  defaults.seed = static_cast<std::uint64_t>(env.get_int(
      "REPRO_FAULT_SEED", static_cast<std::int64_t>(defaults.seed)));
  const double rate = env.get_double("REPRO_FAULT_RATE", -1.0);
  if (rate >= 0.0) {
    defaults.set_rate(rate);
  }
  defaults.counter_rate =
      env.get_double("REPRO_FAULT_COUNTER_RATE", defaults.counter_rate);
  defaults.migration_busy_rate =
      env.get_double("REPRO_FAULT_BUSY_RATE", defaults.migration_busy_rate);
  defaults.slowdown_rate =
      env.get_double("REPRO_FAULT_SLOWDOWN_RATE", defaults.slowdown_rate);
  defaults.preemption_rate =
      env.get_double("REPRO_FAULT_PREEMPT_RATE", defaults.preemption_rate);
  return defaults;
}

void FaultPlan::validate() const {
  const auto valid_rate = [](double r) { return r >= 0.0 && r <= 1.0; };
  REPRO_REQUIRE_MSG(valid_rate(counter_rate) &&
                        valid_rate(migration_busy_rate) &&
                        valid_rate(slowdown_rate) &&
                        valid_rate(preemption_rate),
                    "fault rates must be probabilities in [0, 1]");
  REPRO_REQUIRE_MSG(counter_scale_percent <= 100,
                    "counter_scale_percent must be in [0, 100]");
  REPRO_REQUIRE_MSG(busy_pin_attempts >= 1,
                    "a busy fault pins for at least the faulted attempt");
  REPRO_REQUIRE_MSG(active_until_iteration == 0 ||
                        active_until_iteration >= active_from_iteration,
                    "empty fault schedule");
}

}  // namespace repro::fault
