#include "repro/fault/injector.hpp"

#include <algorithm>
#include <cmath>

#include "repro/common/hash.hpp"

namespace repro::fault {
namespace {

/// Bernoulli threshold: compare the top 53 bits of a draw against
/// rate * 2^53. Exact for rate 0 (never fires) and rate 1 (always
/// fires), monotone in between, and independent of host floating-point
/// environment because the comparison is integer-vs-integer.
[[nodiscard]] bool below_rate(std::uint64_t u, double rate) {
  if (rate <= 0.0) {
    return false;
  }
  if (rate >= 1.0) {
    return true;
  }
  const auto threshold = static_cast<std::uint64_t>(
      std::ldexp(rate, 53));  // rate * 2^53, exact in double
  return (u >> 11) < threshold;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan) {
  plan_.validate();
}

bool FaultInjector::schedule_active() const {
  if (iteration_ < plan_.active_from_iteration) {
    return false;
  }
  return plan_.active_until_iteration == 0 ||
         iteration_ <= plan_.active_until_iteration;
}

std::uint64_t FaultInjector::next_u64(FaultClass cls, std::uint64_t salt) {
  const auto index = static_cast<std::size_t>(cls);
  const std::uint64_t counter = draws_[index]++;
  return avalanche64(plan_.seed ^
                     avalanche64((static_cast<std::uint64_t>(index) << 32) ^
                                 counter) ^
                     avalanche64(salt));
}

bool FaultInjector::draw(FaultClass cls, double rate, std::uint64_t salt) {
  if (rate <= 0.0 || !schedule_active()) {
    return false;
  }
  return below_rate(next_u64(cls, salt), rate);
}

void FaultInjector::emit(FaultClass cls, Ns time, std::uint64_t page,
                         std::uint64_t b, Ns cost, std::int32_t node) {
  if (sink_ == nullptr) {
    return;
  }
  trace::TraceEvent event;
  event.kind = trace::EventKind::kFaultInjection;
  event.time = time;
  event.page = page;
  event.a = static_cast<std::uint64_t>(cls);
  event.b = b;
  event.cost = cost;
  event.node = node;
  sink_->emit(lane_, event);
}

std::span<const std::uint32_t> FaultInjector::filter_counters(
    VPage page, std::span<const std::uint32_t> counts) {
  if (!draw(FaultClass::kCounterCorruption, plan_.counter_rate,
            page.value())) {
    return counts;
  }
  ++stats_.counter_corruptions;
  scratch_.assign(counts.begin(), counts.end());
  for (std::uint32_t& c : scratch_) {
    c = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(c) * plan_.counter_scale_percent) / 100);
  }
  emit(FaultClass::kCounterCorruption, sink_ != nullptr ? sink_->now() : 0,
       page.value(), plan_.counter_scale_percent, 0, -1);
  return scratch_;
}

bool FaultInjector::migration_busy(VPage page) {
  // An active pin rejects without drawing: the pin models one
  // transient condition spanning several attempts, not several
  // independent faults.
  if (const auto it = pinned_.find(page.value()); it != pinned_.end()) {
    ++stats_.busy_rejections;
    if (--it->second == 0) {
      pinned_.erase(it);
    }
    emit(FaultClass::kMigrationBusy, sink_ != nullptr ? sink_->now() : 0,
         page.value(), 1, 0, -1);
    return true;
  }
  if (!draw(FaultClass::kMigrationBusy, plan_.migration_busy_rate,
            page.value())) {
    return false;
  }
  ++stats_.busy_rejections;
  if (plan_.busy_pin_attempts > 1) {
    pinned_.emplace(page.value(), plan_.busy_pin_attempts - 1);
  }
  emit(FaultClass::kMigrationBusy, sink_ != nullptr ? sink_->now() : 0,
       page.value(), 0, 0, -1);
  return true;
}

FaultInjector::MissFault FaultInjector::on_miss(NodeId home,
                                                std::uint32_t lines, Ns now) {
  if (!draw(FaultClass::kNodeSlowdown, plan_.slowdown_rate,
            (static_cast<std::uint64_t>(home.value()) << 32) ^ lines)) {
    return {};
  }
  ++stats_.slowdowns;
  stats_.slowdown_ns_total += plan_.slowdown_ns;
  stats_.spike_lines += plan_.spike_lines;
  emit(FaultClass::kNodeSlowdown, now, 0, plan_.spike_lines,
       plan_.slowdown_ns, static_cast<std::int32_t>(home.value()));
  return {plan_.slowdown_ns, plan_.spike_lines};
}

FaultInjector::RegionFault FaultInjector::on_region(std::uint32_t num_threads,
                                                    Ns region_end) {
  RegionFault out;
  if (num_threads == 0 ||
      !draw(FaultClass::kPreemption, plan_.preemption_rate, num_threads)) {
    return out;
  }
  out.fired = true;
  // Second draw for the victim thread: the fired Bernoulli value is
  // conditioned small, so reusing its bits would bias the choice.
  out.thread = static_cast<std::uint32_t>(
      next_u64(FaultClass::kPreemption, 0x7412ead) % num_threads);
  out.stretch = plan_.preemption_ns;
  ++stats_.preemptions;
  stats_.preemption_ns_total += out.stretch;
  emit(FaultClass::kPreemption, region_end, 0, out.thread, out.stretch,
       static_cast<std::int32_t>(out.thread));
  return out;
}

std::uint64_t FaultInjector::digest() const {
  StateHash h;
  h.mix(plan_.seed);
  for (const std::uint64_t d : draws_) {
    h.mix(d);
  }
  // Commutative mix: unordered_map iteration order is not canonical.
  std::uint64_t pins = 0;
  for (const auto& [page, remaining] : pinned_) {
    pins += avalanche64(avalanche64(page) ^ remaining);
  }
  h.mix(pins);
  const bool exhausted = plan_.active_until_iteration != 0 &&
                         iteration_ > plan_.active_until_iteration;
  h.mix(exhausted ? ~std::uint64_t{0} : iteration_);
  return h.value();
}

}  // namespace repro::fault
