#include "repro/vm/address_space.hpp"

#include "repro/common/assert.hpp"

namespace repro::vm {

VPage PageRange::page(std::uint64_t i) const {
  REPRO_REQUIRE(i < count);
  return VPage(first.value() + i);
}

bool PageRange::contains(VPage p) const {
  return p.value() >= first.value() && p.value() < first.value() + count;
}

AddressSpace::AddressSpace(Bytes page_size) : page_size_(page_size) {
  REPRO_REQUIRE(page_size >= 1);
}

PageRange AddressSpace::allocate(const std::string& name, Bytes bytes) {
  REPRO_REQUIRE(bytes >= 1);
  const std::uint64_t pages = (bytes + page_size_ - 1) / page_size_;
  return allocate_pages(name, pages);
}

PageRange AddressSpace::allocate_pages(const std::string& name,
                                       std::uint64_t pages) {
  REPRO_REQUIRE(pages >= 1);
  REPRO_REQUIRE_MSG(!by_name_.contains(name), "duplicate array name");
  // Skip one guard page before every allocation (page 0 is the null
  // guard). Besides catching overruns, the guards keep array bases off
  // multiples of small powers of two, so systematic placements like
  // round-robin do not accidentally align with page-aligned partitions.
  next_page_ += 1;
  const PageRange range{VPage(next_page_), pages};
  next_page_ += pages;
  by_name_.emplace(name, range);
  order_.emplace_back(name, range);
  return range;
}

const PageRange& AddressSpace::range(const std::string& name) const {
  auto it = by_name_.find(name);
  REPRO_REQUIRE_MSG(it != by_name_.end(), "unknown array name");
  return it->second;
}

bool AddressSpace::has(const std::string& name) const {
  return by_name_.contains(name);
}

}  // namespace repro::vm
