#include "repro/vm/physical_memory.hpp"

#include <limits>

#include "repro/common/assert.hpp"

namespace repro::vm {

PhysicalMemory::PhysicalMemory(std::size_t num_nodes,
                               std::size_t frames_per_node,
                               const topo::Topology& topology)
    : num_nodes_(num_nodes),
      frames_per_node_(frames_per_node),
      topology_(&topology),
      free_lists_(num_nodes),
      allocated_(num_nodes * frames_per_node, false) {
  REPRO_REQUIRE(num_nodes >= 1 && frames_per_node >= 1);
  REPRO_REQUIRE(topology.num_nodes() == num_nodes);
  for (std::size_t n = 0; n < num_nodes_; ++n) {
    auto& list = free_lists_[n];
    list.reserve(frames_per_node_);
    // Push in reverse so the lowest frame id pops first (determinism).
    for (std::size_t f = frames_per_node_; f-- > 0;) {
      list.push_back(FrameId(n * frames_per_node_ + f));
    }
  }
}

std::optional<FrameId> PhysicalMemory::allocate_strict(NodeId node) {
  REPRO_REQUIRE(node.value() < num_nodes_);
  auto& list = free_lists_[node.value()];
  if (list.empty()) {
    return std::nullopt;
  }
  const FrameId frame = list.back();
  list.pop_back();
  allocated_[static_cast<std::size_t>(frame.value())] = true;
  return frame;
}

std::optional<FrameId> PhysicalMemory::allocate(
    NodeId preferred, std::optional<NodeId> exclude) {
  if (!exclude || *exclude != preferred) {
    if (auto frame = allocate_strict(preferred)) {
      return frame;
    }
  }
  // Best-effort redirection: closest node (fewest hops) with space.
  unsigned best_hops = std::numeric_limits<unsigned>::max();
  std::optional<NodeId> best;
  for (std::uint32_t n = 0; n < num_nodes_; ++n) {
    if (free_lists_[n].empty() || (exclude && exclude->value() == n)) {
      continue;
    }
    const unsigned h = topology_->hops(preferred, NodeId(n));
    if (h < best_hops) {
      best_hops = h;
      best = NodeId(n);
    }
  }
  if (!best) {
    return std::nullopt;
  }
  return allocate_strict(*best);
}

void PhysicalMemory::free(FrameId frame) {
  const auto idx = static_cast<std::size_t>(frame.value());
  REPRO_REQUIRE(idx < allocated_.size());
  REPRO_REQUIRE_MSG(allocated_[idx], "double free of physical frame");
  allocated_[idx] = false;
  free_lists_[node_of(frame).value()].push_back(frame);
}

NodeId PhysicalMemory::node_of(FrameId frame) const {
  const auto idx = static_cast<std::size_t>(frame.value());
  REPRO_REQUIRE(idx < allocated_.size());
  return NodeId(static_cast<std::uint32_t>(idx / frames_per_node_));
}

std::size_t PhysicalMemory::free_frames(NodeId node) const {
  REPRO_REQUIRE(node.value() < num_nodes_);
  return free_lists_[node.value()].size();
}

std::size_t PhysicalMemory::total_free() const {
  std::size_t total = 0;
  for (const auto& list : free_lists_) {
    total += list.size();
  }
  return total;
}

}  // namespace repro::vm
