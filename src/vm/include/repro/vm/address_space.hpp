// The simulated process address space: named shared arrays mapped onto
// dense virtual page ranges. Workload models declare their arrays here;
// UPMlib registers "hot memory areas" (paper Section 3.1) by name or by
// page range.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "repro/common/strong_id.hpp"
#include "repro/common/units.hpp"

namespace repro::vm {

/// A contiguous run of virtual pages.
struct PageRange {
  VPage first;
  std::uint64_t count = 0;

  [[nodiscard]] VPage page(std::uint64_t i) const;
  [[nodiscard]] bool contains(VPage p) const;
  [[nodiscard]] VPage end() const { return VPage(first.value() + count); }
};

class AddressSpace {
 public:
  explicit AddressSpace(Bytes page_size);

  /// Reserves `bytes` rounded up to whole pages under `name`.
  /// Names must be unique.
  PageRange allocate(const std::string& name, Bytes bytes);

  /// Reserves an exact page count under `name`.
  PageRange allocate_pages(const std::string& name, std::uint64_t pages);

  [[nodiscard]] const PageRange& range(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const;

  /// All allocations in declaration order.
  [[nodiscard]] const std::vector<std::pair<std::string, PageRange>>& arrays()
      const {
    return order_;
  }

  [[nodiscard]] std::uint64_t total_pages() const { return next_page_; }
  [[nodiscard]] Bytes page_size() const { return page_size_; }

 private:
  Bytes page_size_;
  std::uint64_t next_page_ = 0;
  std::unordered_map<std::string, PageRange> by_name_;
  std::vector<std::pair<std::string, PageRange>> order_;
};

}  // namespace repro::vm
