// Physical frame pools, one per node, with capacity limits.
//
// IRIX page migration is subject to resource-management constraints: a
// user-requested migration can be rejected when the target node is out
// of memory, in which case the kernel forwards the page to the
// physically closest node with space (best effort). That behaviour lives
// here so both the kernel daemon and UPMlib inherit it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "repro/common/strong_id.hpp"
#include "repro/topology/topology.hpp"

namespace repro::vm {

class PhysicalMemory {
 public:
  PhysicalMemory(std::size_t num_nodes, std::size_t frames_per_node,
                 const topo::Topology& topology);

  /// Allocates a frame on `node` if possible, otherwise on the nearest
  /// node (by hop count, lowest id tie-break) with a free frame.
  /// `exclude`, when set, is never chosen as a redirection target (the
  /// kernel excludes a migration's source node: moving the page "to"
  /// where it already is would be pointless).
  /// Returns nullopt only when no eligible node has a free frame.
  [[nodiscard]] std::optional<FrameId> allocate(
      NodeId preferred, std::optional<NodeId> exclude = std::nullopt);

  /// Allocates strictly on `node`; nullopt when that node is full.
  [[nodiscard]] std::optional<FrameId> allocate_strict(NodeId node);

  void free(FrameId frame);

  [[nodiscard]] NodeId node_of(FrameId frame) const;
  [[nodiscard]] std::size_t free_frames(NodeId node) const;
  [[nodiscard]] std::size_t total_free() const;
  [[nodiscard]] std::size_t num_nodes() const { return num_nodes_; }
  [[nodiscard]] std::size_t frames_per_node() const {
    return frames_per_node_;
  }

 private:
  std::size_t num_nodes_;
  std::size_t frames_per_node_;
  const topo::Topology* topology_;
  std::vector<std::vector<FrameId>> free_lists_;  // by node (LIFO)
  std::vector<bool> allocated_;                   // by frame
};

}  // namespace repro::vm
