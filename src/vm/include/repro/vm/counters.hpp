// Per-frame per-node hardware reference counters.
//
// The Origin2000 attaches a set of 11-bit counters to every physical
// memory frame, one per node, counting accesses (L2 misses) from each
// node. The counters saturate -- an important realism point: a kernel
// engine that never resets them stops seeing differentials once pages
// are hot, while UPMlib resets them at iteration boundaries and so keeps
// full-precision per-iteration traces.
//
// The dense backend materializes the full frames x nodes array up
// front (exact hardware shape; fine at 16 nodes). At 512 nodes that
// array alone is tens of GiB, so the sparse backend allocates counter
// rows lazily, only for frames that have ever been incremented;
// untouched frames read as a shared zero row. Digests are
// backend-identical: both mix frames x nodes and then every nonzero
// counter in frame-major order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "repro/common/flat_map.hpp"
#include "repro/common/strong_id.hpp"

namespace repro::vm {

class RefCounters {
 public:
  RefCounters(std::size_t num_frames, std::size_t num_nodes,
              unsigned counter_bits, bool sparse = false);

  /// Adds `n` accesses from `node` to `frame`, saturating.
  void increment(FrameId frame, NodeId node, std::uint32_t n);

  /// Counter values for one frame, indexed by node.
  [[nodiscard]] std::span<const std::uint32_t> read(FrameId frame) const;

  [[nodiscard]] std::uint32_t read(FrameId frame, NodeId node) const;

  /// Zeroes one frame's counters (OS service used by UPMlib and by the
  /// kernel daemon after a migration).
  void reset(FrameId frame);

  /// Zeroes everything.
  void reset_all();

  [[nodiscard]] std::uint32_t max_value() const { return max_; }
  [[nodiscard]] std::size_t num_nodes() const { return num_nodes_; }
  [[nodiscard]] std::size_t num_frames() const { return num_frames_; }

  /// Node with the largest count for a frame (lowest id wins ties).
  [[nodiscard]] NodeId argmax_node(FrameId frame) const;

  /// Behavioural digest of every nonzero counter (frame-major order).
  /// Counters feed the kernel migration daemon's comparator, so runs
  /// with a daemon installed must include them in the machine digest;
  /// without one they are pure statistics.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  std::size_t num_frames_;
  std::size_t num_nodes_;
  std::uint32_t max_;
  bool sparse_;

  // Dense backend: frame-major [frame][node].
  std::vector<std::uint32_t> values_;

  // Sparse backend: rows allocated on first increment, never freed
  // (row indices stay stable), zeroed on reset.
  FlatMap<std::uint32_t> row_of_;      // frame -> row index
  std::vector<std::uint32_t> rows_;    // row-major pool, num_nodes_ each
  std::vector<std::uint32_t> zero_row_;

  [[nodiscard]] std::size_t index(FrameId frame, NodeId node) const;
  /// Row for `frame`, or nullptr when it was never incremented.
  [[nodiscard]] const std::uint32_t* find_row(FrameId frame) const;
  /// Row for `frame`, allocating a zeroed one when absent.
  [[nodiscard]] std::uint32_t* ensure_row(FrameId frame);
};

}  // namespace repro::vm
