// Page placement policies (paper Section 2).
//
//  - first-touch ("ft"): page goes to the node of the first processor
//    that faults it; IRIX's default. The tuned NAS codes run a cold-start
//    iteration so first-touch reproduces their intended distribution.
//  - round-robin ("rr"): pages are distributed over nodes cyclically by
//    virtual page number (IRIX DSM_PLACEMENT=ROUNDROBIN; keying on the
//    page number rather than fault arrival keeps the distribution
//    decorrelated from the simulator's deterministic thread interleaving,
//    which would otherwise accidentally reproduce first-touch).
//  - random ("rand"): each page goes to a uniformly random node (the
//    paper emulates this with mprotect + SIGSEGV + MLD placement; here
//    the policy implements it directly).
//  - worst-case ("wc"): every page on a single node -- equivalent to a
//    buddy allocator satisfying all allocations best-fit from one node,
//    and to running the cold-start iteration on one processor.
#pragma once

#include <memory>
#include <string>

#include "repro/common/rng.hpp"
#include "repro/common/strong_id.hpp"

namespace repro::vm {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Chooses the home node for a page on its first fault.
  [[nodiscard]] virtual NodeId place(VPage page, ProcId first_toucher) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Restores the initial policy state (between experiment repetitions).
  virtual void reset() {}
};

class FirstTouchPlacement final : public PlacementPolicy {
 public:
  FirstTouchPlacement(std::size_t num_nodes, std::size_t procs_per_node);
  [[nodiscard]] NodeId place(VPage page, ProcId first_toucher) override;
  [[nodiscard]] std::string name() const override { return "ft"; }

 private:
  std::size_t num_nodes_;
  std::size_t procs_per_node_;
};

class RoundRobinPlacement final : public PlacementPolicy {
 public:
  explicit RoundRobinPlacement(std::size_t num_nodes);
  [[nodiscard]] NodeId place(VPage page, ProcId first_toucher) override;
  [[nodiscard]] std::string name() const override { return "rr"; }

 private:
  std::size_t num_nodes_;
};

class RandomPlacement final : public PlacementPolicy {
 public:
  RandomPlacement(std::size_t num_nodes, std::uint64_t seed);
  [[nodiscard]] NodeId place(VPage page, ProcId first_toucher) override;
  [[nodiscard]] std::string name() const override { return "rand"; }
  void reset() override;

 private:
  std::size_t num_nodes_;
  std::uint64_t seed_;
  Rng rng_;
};

class FixedNodePlacement final : public PlacementPolicy {
 public:
  explicit FixedNodePlacement(NodeId node);
  [[nodiscard]] NodeId place(VPage page, ProcId first_toucher) override;
  [[nodiscard]] std::string name() const override { return "wc"; }

 private:
  NodeId node_;
};

/// Factory for the paper's four schemes: "ft", "rr", "rand", "wc".
[[nodiscard]] std::unique_ptr<PlacementPolicy> make_placement(
    const std::string& name, std::size_t num_nodes,
    std::size_t procs_per_node, std::uint64_t seed);

}  // namespace repro::vm
