// Virtual-to-physical page table plus per-page metadata needed by the
// migration machinery: which processors hold a live TLB mapping (so a
// migration can charge the right shootdown cost) and how often the page
// has migrated.
//
// Two interchangeable backends (chosen at construction, see
// memsys::TableBackend): a dense array over the compact virtual page
// space (the hot default at the paper's 16 nodes) and a sparse
// open-addressed index that keeps only mapped pages, for the 128/512
// node scale sweeps where a dense O(pages) array per structure would
// dominate the simulator's footprint. Digests and iteration order are
// backend-independent: both enumerate mapped pages in ascending page
// order.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "repro/common/flat_map.hpp"
#include "repro/common/hash.hpp"
#include "repro/common/strong_id.hpp"

namespace repro::vm {

class PageTable {
 public:
  struct Entry {
    FrameId frame;
    /// Bitmask of processors 0..63 that have faulted the page into
    /// their TLB since the last shootdown.
    std::uint64_t mapper_mask = 0;
    /// Mapper words for processors >= 64 (word w covers processors
    /// 64*(w+1)..64*(w+2)-1). Empty on machines with <= 64 processors,
    /// which keeps their digests byte-identical to the single-word
    /// representation.
    std::vector<std::uint64_t> mapper_high;
    std::uint32_t migrations = 0;
    /// Read-only replicas of the page on other nodes (frames holding
    /// copies; the primary stays authoritative). Collapsed on write.
    std::vector<FrameId> replicas;
    /// Written since the last clear_dirty() (drives the replication
    /// policy: only clean pages may replicate).
    bool dirty = false;
    /// Dense-slot state: the dense table is an array over the virtual
    /// page space, so unmapped pages occupy empty slots. Sparse slots
    /// are mapped iff indexed.
    bool mapped = false;
  };

  explicit PageTable(bool sparse = false) : sparse_(sparse) {}

  /// Maps a page; the page must be unmapped.
  void map(VPage page, FrameId frame);

  /// Unmaps; returns the old frame. The page must be mapped.
  FrameId unmap(VPage page);

  /// Remaps to a new frame (migration), clearing the mapper set and
  /// incrementing the migration count. Returns the old frame.
  FrameId remap(VPage page, FrameId frame);

  [[nodiscard]] bool is_mapped(VPage page) const {
    if (sparse_) {
      return index_.find(page.value()) != nullptr;
    }
    return page.value() < table_.size() && table_[page.value()].mapped;
  }
  /// The translation hot path: one bounds check and one indexed load in
  /// dense mode (virtual pages are dense, see vm::AddressSpace); one
  /// hash probe in sparse mode.
  [[nodiscard]] std::optional<FrameId> lookup(VPage page) const {
    if (sparse_) {
      const std::uint32_t* slot = index_.find(page.value());
      if (slot == nullptr) {
        return std::nullopt;
      }
      return slots_[*slot].frame;
    }
    if (!is_mapped(page)) {
      return std::nullopt;
    }
    return table_[page.value()].frame;
  }

  /// Entry accessor; the page must be mapped.
  [[nodiscard]] const Entry& entry(VPage page) const;

  /// Records that `proc` established a TLB mapping for the page.
  void note_mapper(VPage page, ProcId proc);

  /// Marks the page written / clears the mark.
  void mark_dirty(VPage page);
  void clear_dirty(VPage page);
  [[nodiscard]] bool is_dirty(VPage page) const;

  /// Replica management (page must be mapped).
  void add_replica(VPage page, FrameId frame);
  /// Removes and returns all replica frames (write collapse).
  [[nodiscard]] std::vector<FrameId> take_replicas(VPage page);
  [[nodiscard]] const std::vector<FrameId>& replicas(VPage page) const;

  /// Number of processors with a live mapping.
  [[nodiscard]] unsigned mapper_count(VPage page) const;

  [[nodiscard]] std::size_t mapped_pages() const { return mapped_count_; }
  [[nodiscard]] bool sparse() const { return sparse_; }

  /// Digest (in page order) of the placement-relevant state of every
  /// mapping: frame, mapper set, dirty bit and the replica list (in
  /// order -- resolve() scans replicas front to back, so replica order
  /// breaks hop-distance ties). The monotone `migrations` counter is a
  /// statistic and is excluded. Backend-independent by construction.
  [[nodiscard]] std::uint64_t digest() const;

  /// Materialized snapshot of the mapped entries, in page order (for
  /// whole-address-space scans in tests/tools; not a hot path).
  [[nodiscard]] std::vector<std::pair<VPage, Entry>> entries() const;

 private:
  bool sparse_;

  // Dense backend: indexed by page id.
  std::vector<Entry> table_;

  // Sparse backend: page -> slot in a recycled entry pool.
  FlatMap<std::uint32_t> index_;
  std::vector<Entry> slots_;
  std::vector<std::uint32_t> free_slots_;

  std::size_t mapped_count_ = 0;

  Entry& mutable_entry(VPage page);
  /// Mapped pages in ascending page order (sparse backend helper).
  [[nodiscard]] std::vector<std::uint64_t> sorted_pages() const;
};

}  // namespace repro::vm
