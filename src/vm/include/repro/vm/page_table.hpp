// Virtual-to-physical page table plus per-page metadata needed by the
// migration machinery: which processors hold a live TLB mapping (so a
// migration can charge the right shootdown cost) and how often the page
// has migrated.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "repro/common/hash.hpp"
#include "repro/common/strong_id.hpp"

namespace repro::vm {

class PageTable {
 public:
  struct Entry {
    FrameId frame;
    /// Bitmask of processors that have faulted the page into their TLB
    /// since the last shootdown.
    std::uint64_t mapper_mask = 0;
    std::uint32_t migrations = 0;
    /// Read-only replicas of the page on other nodes (frames holding
    /// copies; the primary stays authoritative). Collapsed on write.
    std::vector<FrameId> replicas;
    /// Written since the last clear_dirty() (drives the replication
    /// policy: only clean pages may replicate).
    bool dirty = false;
    /// Slot state: the table is a dense array over the (compact)
    /// virtual page space, so unmapped pages occupy empty slots.
    bool mapped = false;
  };

  /// Maps a page; the page must be unmapped.
  void map(VPage page, FrameId frame);

  /// Unmaps; returns the old frame. The page must be mapped.
  FrameId unmap(VPage page);

  /// Remaps to a new frame (migration), clearing mapper_mask and
  /// incrementing the migration count. Returns the old frame.
  FrameId remap(VPage page, FrameId frame);

  [[nodiscard]] bool is_mapped(VPage page) const {
    return page.value() < table_.size() && table_[page.value()].mapped;
  }
  /// The translation hot path: one bounds check and one indexed load
  /// (virtual pages are dense, see vm::AddressSpace).
  [[nodiscard]] std::optional<FrameId> lookup(VPage page) const {
    if (!is_mapped(page)) {
      return std::nullopt;
    }
    return table_[page.value()].frame;
  }

  /// Entry accessor; the page must be mapped.
  [[nodiscard]] const Entry& entry(VPage page) const;

  /// Records that `proc` established a TLB mapping for the page.
  void note_mapper(VPage page, ProcId proc);

  /// Marks the page written / clears the mark.
  void mark_dirty(VPage page);
  void clear_dirty(VPage page);
  [[nodiscard]] bool is_dirty(VPage page) const;

  /// Replica management (page must be mapped).
  void add_replica(VPage page, FrameId frame);
  /// Removes and returns all replica frames (write collapse).
  [[nodiscard]] std::vector<FrameId> take_replicas(VPage page);
  [[nodiscard]] const std::vector<FrameId>& replicas(VPage page) const;

  /// Number of processors with a live mapping.
  [[nodiscard]] unsigned mapper_count(VPage page) const;

  [[nodiscard]] std::size_t mapped_pages() const { return mapped_count_; }

  /// Digest (in page order) of the placement-relevant state of every
  /// mapping: frame, mapper mask, dirty bit and the replica list (in
  /// order -- resolve() scans replicas front to back, so replica order
  /// breaks hop-distance ties). The monotone `migrations` counter is a
  /// statistic and is excluded.
  [[nodiscard]] std::uint64_t digest() const;

  /// Materialized snapshot of the mapped entries, in page order (for
  /// whole-address-space scans in tests/tools; not a hot path).
  [[nodiscard]] std::vector<std::pair<VPage, Entry>> entries() const;

 private:
  std::vector<Entry> table_;  // indexed by page id
  std::size_t mapped_count_ = 0;

  Entry& mutable_entry(VPage page);
};

}  // namespace repro::vm
