// Virtual-to-physical page table plus per-page metadata needed by the
// migration machinery: which processors hold a live TLB mapping (so a
// migration can charge the right shootdown cost) and how often the page
// has migrated.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "repro/common/strong_id.hpp"

namespace repro::vm {

class PageTable {
 public:
  struct Entry {
    FrameId frame;
    /// Bitmask of processors that have faulted the page into their TLB
    /// since the last shootdown.
    std::uint64_t mapper_mask = 0;
    std::uint32_t migrations = 0;
    /// Read-only replicas of the page on other nodes (frames holding
    /// copies; the primary stays authoritative). Collapsed on write.
    std::vector<FrameId> replicas;
    /// Written since the last clear_dirty() (drives the replication
    /// policy: only clean pages may replicate).
    bool dirty = false;
  };

  /// Maps a page; the page must be unmapped.
  void map(VPage page, FrameId frame);

  /// Unmaps; returns the old frame. The page must be mapped.
  FrameId unmap(VPage page);

  /// Remaps to a new frame (migration), clearing mapper_mask and
  /// incrementing the migration count. Returns the old frame.
  FrameId remap(VPage page, FrameId frame);

  [[nodiscard]] bool is_mapped(VPage page) const;
  [[nodiscard]] std::optional<FrameId> lookup(VPage page) const;

  /// Entry accessor; the page must be mapped.
  [[nodiscard]] const Entry& entry(VPage page) const;

  /// Records that `proc` established a TLB mapping for the page.
  void note_mapper(VPage page, ProcId proc);

  /// Marks the page written / clears the mark.
  void mark_dirty(VPage page);
  void clear_dirty(VPage page);
  [[nodiscard]] bool is_dirty(VPage page) const;

  /// Replica management (page must be mapped).
  void add_replica(VPage page, FrameId frame);
  /// Removes and returns all replica frames (write collapse).
  [[nodiscard]] std::vector<FrameId> take_replicas(VPage page);
  [[nodiscard]] const std::vector<FrameId>& replicas(VPage page) const;

  /// Number of processors with a live mapping.
  [[nodiscard]] unsigned mapper_count(VPage page) const;

  [[nodiscard]] std::size_t mapped_pages() const { return table_.size(); }

  /// Iteration support (for whole-address-space scans in tests/tools).
  [[nodiscard]] const std::unordered_map<VPage, Entry>& entries() const {
    return table_;
  }

 private:
  std::unordered_map<VPage, Entry> table_;

  Entry& mutable_entry(VPage page);
};

}  // namespace repro::vm
