#include "repro/vm/counters.hpp"

#include <algorithm>

#include "repro/common/assert.hpp"
#include "repro/common/hash.hpp"

namespace repro::vm {

RefCounters::RefCounters(std::size_t num_frames, std::size_t num_nodes,
                         unsigned counter_bits)
    : num_frames_(num_frames),
      num_nodes_(num_nodes),
      max_((1u << counter_bits) - 1u),
      values_(num_frames * num_nodes, 0) {
  REPRO_REQUIRE(num_frames >= 1);
  REPRO_REQUIRE(num_nodes >= 1);
  REPRO_REQUIRE(counter_bits >= 1 && counter_bits <= 31);
}

std::size_t RefCounters::index(FrameId frame, NodeId node) const {
  REPRO_REQUIRE(frame.value() < num_frames_);
  REPRO_REQUIRE(node.value() < num_nodes_);
  return static_cast<std::size_t>(frame.value()) * num_nodes_ + node.value();
}

void RefCounters::increment(FrameId frame, NodeId node, std::uint32_t n) {
  std::uint32_t& v = values_[index(frame, node)];
  v = (max_ - v < n) ? max_ : v + n;
}

std::span<const std::uint32_t> RefCounters::read(FrameId frame) const {
  REPRO_REQUIRE(frame.value() < num_frames_);
  return {values_.data() +
              static_cast<std::size_t>(frame.value()) * num_nodes_,
          num_nodes_};
}

std::uint32_t RefCounters::read(FrameId frame, NodeId node) const {
  return values_[index(frame, node)];
}

void RefCounters::reset(FrameId frame) {
  REPRO_REQUIRE(frame.value() < num_frames_);
  auto* base =
      values_.data() + static_cast<std::size_t>(frame.value()) * num_nodes_;
  std::fill(base, base + num_nodes_, 0u);
}

void RefCounters::reset_all() {
  std::fill(values_.begin(), values_.end(), 0u);
}

NodeId RefCounters::argmax_node(FrameId frame) const {
  const auto counts = read(frame);
  const auto it = std::max_element(counts.begin(), counts.end());
  return NodeId(static_cast<std::uint32_t>(it - counts.begin()));
}

std::uint64_t RefCounters::digest() const {
  StateHash hash;
  hash.mix(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] != 0) {
      hash.mix(i);
      hash.mix(values_[i]);
    }
  }
  return hash.value();
}

}  // namespace repro::vm
