#include "repro/vm/counters.hpp"

#include <algorithm>

#include "repro/common/assert.hpp"
#include "repro/common/hash.hpp"

namespace repro::vm {

RefCounters::RefCounters(std::size_t num_frames, std::size_t num_nodes,
                         unsigned counter_bits, bool sparse)
    : num_frames_(num_frames),
      num_nodes_(num_nodes),
      max_((1u << counter_bits) - 1u),
      sparse_(sparse) {
  REPRO_REQUIRE(num_frames >= 1);
  REPRO_REQUIRE(num_nodes >= 1);
  REPRO_REQUIRE(counter_bits >= 1 && counter_bits <= 31);
  if (sparse_) {
    zero_row_.assign(num_nodes_, 0);
  } else {
    values_.assign(num_frames * num_nodes, 0);
  }
}

std::size_t RefCounters::index(FrameId frame, NodeId node) const {
  REPRO_REQUIRE(frame.value() < num_frames_);
  REPRO_REQUIRE(node.value() < num_nodes_);
  return static_cast<std::size_t>(frame.value()) * num_nodes_ + node.value();
}

const std::uint32_t* RefCounters::find_row(FrameId frame) const {
  REPRO_REQUIRE(frame.value() < num_frames_);
  const std::uint32_t* row = row_of_.find(frame.value());
  return row == nullptr ? nullptr : rows_.data() + *row * num_nodes_;
}

std::uint32_t* RefCounters::ensure_row(FrameId frame) {
  REPRO_REQUIRE(frame.value() < num_frames_);
  if (const std::uint32_t* row = row_of_.find(frame.value())) {
    return rows_.data() + *row * num_nodes_;
  }
  const auto row = static_cast<std::uint32_t>(rows_.size() / num_nodes_);
  rows_.resize(rows_.size() + num_nodes_, 0);
  row_of_[frame.value()] = row;
  return rows_.data() + static_cast<std::size_t>(row) * num_nodes_;
}

void RefCounters::increment(FrameId frame, NodeId node, std::uint32_t n) {
  std::uint32_t& v = sparse_ ? ensure_row(frame)[node.value()]
                             : values_[index(frame, node)];
  v = (max_ - v < n) ? max_ : v + n;
}

std::span<const std::uint32_t> RefCounters::read(FrameId frame) const {
  if (sparse_) {
    const std::uint32_t* row = find_row(frame);
    return {row == nullptr ? zero_row_.data() : row, num_nodes_};
  }
  REPRO_REQUIRE(frame.value() < num_frames_);
  return {values_.data() +
              static_cast<std::size_t>(frame.value()) * num_nodes_,
          num_nodes_};
}

std::uint32_t RefCounters::read(FrameId frame, NodeId node) const {
  if (sparse_) {
    REPRO_REQUIRE(node.value() < num_nodes_);
    const std::uint32_t* row = find_row(frame);
    return row == nullptr ? 0 : row[node.value()];
  }
  return values_[index(frame, node)];
}

void RefCounters::reset(FrameId frame) {
  REPRO_REQUIRE(frame.value() < num_frames_);
  if (sparse_) {
    // The row stays allocated (indices are stable); a zeroed row and a
    // never-touched frame are indistinguishable to readers and digests.
    if (const std::uint32_t* row = row_of_.find(frame.value())) {
      auto* base = rows_.data() + *row * num_nodes_;
      std::fill(base, base + num_nodes_, 0u);
    }
    return;
  }
  auto* base =
      values_.data() + static_cast<std::size_t>(frame.value()) * num_nodes_;
  std::fill(base, base + num_nodes_, 0u);
}

void RefCounters::reset_all() {
  std::fill(values_.begin(), values_.end(), 0u);
  std::fill(rows_.begin(), rows_.end(), 0u);
}

NodeId RefCounters::argmax_node(FrameId frame) const {
  const auto counts = read(frame);
  const auto it = std::max_element(counts.begin(), counts.end());
  return NodeId(static_cast<std::uint32_t>(it - counts.begin()));
}

std::uint64_t RefCounters::digest() const {
  // Both backends mix the *logical* array size (frames x nodes) and the
  // nonzero counters at their frame-major flat indices, so sparse and
  // dense machines with equal counter state digest identically.
  StateHash hash;
  hash.mix(num_frames_ * num_nodes_);
  if (sparse_) {
    std::vector<std::uint64_t> frames;
    frames.reserve(row_of_.size());
    row_of_.for_each(
        [&](std::uint64_t frame, std::uint32_t) { frames.push_back(frame); });
    std::sort(frames.begin(), frames.end());
    for (const std::uint64_t frame : frames) {
      const std::uint32_t* row = find_row(FrameId(frame));
      for (std::size_t n = 0; n < num_nodes_; ++n) {
        if (row[n] != 0) {
          hash.mix(frame * num_nodes_ + n);
          hash.mix(row[n]);
        }
      }
    }
  } else {
    for (std::size_t i = 0; i < values_.size(); ++i) {
      if (values_[i] != 0) {
        hash.mix(i);
        hash.mix(values_[i]);
      }
    }
  }
  return hash.value();
}

}  // namespace repro::vm
