#include "repro/vm/placement.hpp"

#include "repro/common/assert.hpp"

namespace repro::vm {

FirstTouchPlacement::FirstTouchPlacement(std::size_t num_nodes,
                                         std::size_t procs_per_node)
    : num_nodes_(num_nodes), procs_per_node_(procs_per_node) {
  REPRO_REQUIRE(num_nodes >= 1 && procs_per_node >= 1);
}

NodeId FirstTouchPlacement::place(VPage /*page*/, ProcId first_toucher) {
  const auto node = first_toucher.value() /
                    static_cast<std::uint32_t>(procs_per_node_);
  REPRO_REQUIRE(node < num_nodes_);
  return NodeId(node);
}

RoundRobinPlacement::RoundRobinPlacement(std::size_t num_nodes)
    : num_nodes_(num_nodes) {
  REPRO_REQUIRE(num_nodes >= 1);
}

NodeId RoundRobinPlacement::place(VPage page, ProcId /*first_toucher*/) {
  return NodeId(static_cast<std::uint32_t>(page.value() % num_nodes_));
}

RandomPlacement::RandomPlacement(std::size_t num_nodes, std::uint64_t seed)
    : num_nodes_(num_nodes), seed_(seed), rng_(seed) {
  REPRO_REQUIRE(num_nodes >= 1);
}

NodeId RandomPlacement::place(VPage /*page*/, ProcId /*first_toucher*/) {
  return NodeId(static_cast<std::uint32_t>(rng_.next_below(num_nodes_)));
}

void RandomPlacement::reset() { rng_ = Rng(seed_); }

FixedNodePlacement::FixedNodePlacement(NodeId node) : node_(node) {}

NodeId FixedNodePlacement::place(VPage /*page*/, ProcId /*first_toucher*/) {
  return node_;
}

std::unique_ptr<PlacementPolicy> make_placement(const std::string& name,
                                                std::size_t num_nodes,
                                                std::size_t procs_per_node,
                                                std::uint64_t seed) {
  if (name == "ft") {
    return std::make_unique<FirstTouchPlacement>(num_nodes, procs_per_node);
  }
  if (name == "rr") {
    return std::make_unique<RoundRobinPlacement>(num_nodes);
  }
  if (name == "rand") {
    return std::make_unique<RandomPlacement>(num_nodes, seed);
  }
  if (name == "wc") {
    return std::make_unique<FixedNodePlacement>(NodeId(0));
  }
  REPRO_UNREACHABLE("unknown placement policy name");
}

}  // namespace repro::vm
