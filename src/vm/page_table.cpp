#include "repro/vm/page_table.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "repro/common/assert.hpp"

namespace repro::vm {

PageTable::Entry& PageTable::mutable_entry(VPage page) {
  REPRO_REQUIRE_MSG(is_mapped(page), "page not mapped");
  return table_[page.value()];
}

void PageTable::map(VPage page, FrameId frame) {
  REPRO_REQUIRE_MSG(!is_mapped(page), "page already mapped");
  if (page.value() >= table_.size()) {
    table_.resize(std::max<std::size_t>(page.value() + 1,
                                        table_.size() * 2));
  }
  table_[page.value()] = Entry{frame, 0, 0, {}, false, true};
  ++mapped_count_;
}

FrameId PageTable::unmap(VPage page) {
  Entry& e = mutable_entry(page);
  const FrameId old = e.frame;
  e = Entry{};
  --mapped_count_;
  return old;
}

FrameId PageTable::remap(VPage page, FrameId frame) {
  Entry& e = mutable_entry(page);
  REPRO_REQUIRE_MSG(e.replicas.empty(),
                    "collapse replicas before migrating a page");
  const FrameId old = e.frame;
  e.frame = frame;
  e.mapper_mask = 0;
  ++e.migrations;
  return old;
}

const PageTable::Entry& PageTable::entry(VPage page) const {
  REPRO_REQUIRE_MSG(is_mapped(page), "page not mapped");
  return table_[page.value()];
}

void PageTable::note_mapper(VPage page, ProcId proc) {
  REPRO_REQUIRE(proc.value() < 64);
  mutable_entry(page).mapper_mask |= 1ULL << proc.value();
}

void PageTable::mark_dirty(VPage page) { mutable_entry(page).dirty = true; }

void PageTable::clear_dirty(VPage page) {
  mutable_entry(page).dirty = false;
}

bool PageTable::is_dirty(VPage page) const { return entry(page).dirty; }

void PageTable::add_replica(VPage page, FrameId frame) {
  Entry& e = mutable_entry(page);
  REPRO_REQUIRE_MSG(frame != e.frame, "replica must differ from primary");
  for (const FrameId existing : e.replicas) {
    REPRO_REQUIRE_MSG(existing != frame, "duplicate replica frame");
  }
  e.replicas.push_back(frame);
}

std::vector<FrameId> PageTable::take_replicas(VPage page) {
  return std::exchange(mutable_entry(page).replicas, {});
}

std::uint64_t PageTable::digest() const {
  StateHash hash;
  hash.mix(mapped_count_);
  for (std::size_t p = 0; p < table_.size(); ++p) {
    const Entry& e = table_[p];
    if (!e.mapped) {
      continue;
    }
    hash.mix(p);
    hash.mix(e.frame.value());
    hash.mix(e.mapper_mask);
    hash.mix(e.dirty ? 1 : 0);
    hash.mix(e.replicas.size());
    for (const FrameId replica : e.replicas) {
      hash.mix(replica.value());
    }
  }
  return hash.value();
}

std::vector<std::pair<VPage, PageTable::Entry>> PageTable::entries() const {
  std::vector<std::pair<VPage, Entry>> out;
  out.reserve(mapped_count_);
  for (std::size_t p = 0; p < table_.size(); ++p) {
    if (table_[p].mapped) {
      out.emplace_back(VPage(p), table_[p]);
    }
  }
  return out;
}

const std::vector<FrameId>& PageTable::replicas(VPage page) const {
  return entry(page).replicas;
}

unsigned PageTable::mapper_count(VPage page) const {
  return static_cast<unsigned>(std::popcount(entry(page).mapper_mask));
}

}  // namespace repro::vm
