#include "repro/vm/page_table.hpp"

#include <bit>
#include <utility>

#include "repro/common/assert.hpp"

namespace repro::vm {

PageTable::Entry& PageTable::mutable_entry(VPage page) {
  auto it = table_.find(page);
  REPRO_REQUIRE_MSG(it != table_.end(), "page not mapped");
  return it->second;
}

void PageTable::map(VPage page, FrameId frame) {
  REPRO_REQUIRE_MSG(!table_.contains(page), "page already mapped");
  table_.emplace(page, Entry{frame, 0, 0, {}, false});
}

FrameId PageTable::unmap(VPage page) {
  auto it = table_.find(page);
  REPRO_REQUIRE_MSG(it != table_.end(), "page not mapped");
  const FrameId old = it->second.frame;
  table_.erase(it);
  return old;
}

FrameId PageTable::remap(VPage page, FrameId frame) {
  Entry& e = mutable_entry(page);
  REPRO_REQUIRE_MSG(e.replicas.empty(),
                    "collapse replicas before migrating a page");
  const FrameId old = e.frame;
  e.frame = frame;
  e.mapper_mask = 0;
  ++e.migrations;
  return old;
}

bool PageTable::is_mapped(VPage page) const { return table_.contains(page); }

std::optional<FrameId> PageTable::lookup(VPage page) const {
  auto it = table_.find(page);
  if (it == table_.end()) {
    return std::nullopt;
  }
  return it->second.frame;
}

const PageTable::Entry& PageTable::entry(VPage page) const {
  auto it = table_.find(page);
  REPRO_REQUIRE_MSG(it != table_.end(), "page not mapped");
  return it->second;
}

void PageTable::note_mapper(VPage page, ProcId proc) {
  REPRO_REQUIRE(proc.value() < 64);
  mutable_entry(page).mapper_mask |= 1ULL << proc.value();
}

void PageTable::mark_dirty(VPage page) { mutable_entry(page).dirty = true; }

void PageTable::clear_dirty(VPage page) {
  mutable_entry(page).dirty = false;
}

bool PageTable::is_dirty(VPage page) const { return entry(page).dirty; }

void PageTable::add_replica(VPage page, FrameId frame) {
  Entry& e = mutable_entry(page);
  REPRO_REQUIRE_MSG(frame != e.frame, "replica must differ from primary");
  for (const FrameId existing : e.replicas) {
    REPRO_REQUIRE_MSG(existing != frame, "duplicate replica frame");
  }
  e.replicas.push_back(frame);
}

std::vector<FrameId> PageTable::take_replicas(VPage page) {
  return std::exchange(mutable_entry(page).replicas, {});
}

const std::vector<FrameId>& PageTable::replicas(VPage page) const {
  return entry(page).replicas;
}

unsigned PageTable::mapper_count(VPage page) const {
  return static_cast<unsigned>(std::popcount(entry(page).mapper_mask));
}

}  // namespace repro::vm
