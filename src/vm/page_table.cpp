#include "repro/vm/page_table.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "repro/common/assert.hpp"

namespace repro::vm {

PageTable::Entry& PageTable::mutable_entry(VPage page) {
  REPRO_REQUIRE_MSG(is_mapped(page), "page not mapped");
  if (sparse_) {
    return slots_[*index_.find(page.value())];
  }
  return table_[page.value()];
}

void PageTable::map(VPage page, FrameId frame) {
  REPRO_REQUIRE_MSG(!is_mapped(page), "page already mapped");
  if (sparse_) {
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Entry& e = slots_[slot];
    e = Entry{};
    e.frame = frame;
    e.mapped = true;
    index_[page.value()] = slot;
  } else {
    if (page.value() >= table_.size()) {
      table_.resize(std::max<std::size_t>(page.value() + 1,
                                          table_.size() * 2));
    }
    Entry& e = table_[page.value()];
    e = Entry{};
    e.frame = frame;
    e.mapped = true;
  }
  ++mapped_count_;
}

FrameId PageTable::unmap(VPage page) {
  Entry& e = mutable_entry(page);
  const FrameId old = e.frame;
  e = Entry{};
  if (sparse_) {
    const std::uint32_t slot = *index_.find(page.value());
    index_.erase(page.value());
    free_slots_.push_back(slot);
  }
  --mapped_count_;
  return old;
}

FrameId PageTable::remap(VPage page, FrameId frame) {
  Entry& e = mutable_entry(page);
  REPRO_REQUIRE_MSG(e.replicas.empty(),
                    "collapse replicas before migrating a page");
  const FrameId old = e.frame;
  e.frame = frame;
  e.mapper_mask = 0;
  e.mapper_high.clear();
  ++e.migrations;
  return old;
}

const PageTable::Entry& PageTable::entry(VPage page) const {
  REPRO_REQUIRE_MSG(is_mapped(page), "page not mapped");
  if (sparse_) {
    return slots_[*index_.find(page.value())];
  }
  return table_[page.value()];
}

void PageTable::note_mapper(VPage page, ProcId proc) {
  Entry& e = mutable_entry(page);
  if (proc.value() < 64) {
    e.mapper_mask |= 1ULL << proc.value();
    return;
  }
  const std::size_t word = proc.value() / 64 - 1;
  if (word >= e.mapper_high.size()) {
    e.mapper_high.resize(word + 1, 0);
  }
  e.mapper_high[word] |= 1ULL << (proc.value() % 64);
}

void PageTable::mark_dirty(VPage page) { mutable_entry(page).dirty = true; }

void PageTable::clear_dirty(VPage page) {
  mutable_entry(page).dirty = false;
}

bool PageTable::is_dirty(VPage page) const { return entry(page).dirty; }

void PageTable::add_replica(VPage page, FrameId frame) {
  Entry& e = mutable_entry(page);
  REPRO_REQUIRE_MSG(frame != e.frame, "replica must differ from primary");
  for (const FrameId existing : e.replicas) {
    REPRO_REQUIRE_MSG(existing != frame, "duplicate replica frame");
  }
  e.replicas.push_back(frame);
}

std::vector<FrameId> PageTable::take_replicas(VPage page) {
  return std::exchange(mutable_entry(page).replicas, {});
}

std::vector<std::uint64_t> PageTable::sorted_pages() const {
  std::vector<std::uint64_t> pages;
  pages.reserve(mapped_count_);
  index_.for_each(
      [&](std::uint64_t page, std::uint32_t) { pages.push_back(page); });
  std::sort(pages.begin(), pages.end());
  return pages;
}

std::uint64_t PageTable::digest() const {
  StateHash hash;
  hash.mix(mapped_count_);
  const auto mix_entry = [&hash](std::uint64_t page, const Entry& e) {
    hash.mix(page);
    hash.mix(e.frame.value());
    hash.mix(e.mapper_mask);
    // High mapper words exist only on > 64-proc machines; skipping them
    // when empty keeps <= 64-proc digests byte-identical to the
    // historical single-word layout (the 16-node golden traces).
    if (!e.mapper_high.empty()) {
      hash.mix(e.mapper_high.size());
      for (const std::uint64_t word : e.mapper_high) {
        hash.mix(word);
      }
    }
    hash.mix(e.dirty ? 1 : 0);
    hash.mix(e.replicas.size());
    for (const FrameId replica : e.replicas) {
      hash.mix(replica.value());
    }
  };
  if (sparse_) {
    for (const std::uint64_t page : sorted_pages()) {
      mix_entry(page, slots_[*index_.find(page)]);
    }
  } else {
    for (std::size_t p = 0; p < table_.size(); ++p) {
      if (table_[p].mapped) {
        mix_entry(p, table_[p]);
      }
    }
  }
  return hash.value();
}

std::vector<std::pair<VPage, PageTable::Entry>> PageTable::entries() const {
  std::vector<std::pair<VPage, Entry>> out;
  out.reserve(mapped_count_);
  if (sparse_) {
    for (const std::uint64_t page : sorted_pages()) {
      out.emplace_back(VPage(page), slots_[*index_.find(page)]);
    }
  } else {
    for (std::size_t p = 0; p < table_.size(); ++p) {
      if (table_[p].mapped) {
        out.emplace_back(VPage(p), table_[p]);
      }
    }
  }
  return out;
}

const std::vector<FrameId>& PageTable::replicas(VPage page) const {
  return entry(page).replicas;
}

unsigned PageTable::mapper_count(VPage page) const {
  const Entry& e = entry(page);
  auto count = static_cast<unsigned>(std::popcount(e.mapper_mask));
  for (const std::uint64_t word : e.mapper_high) {
    count += static_cast<unsigned>(std::popcount(word));
  }
  return count;
}

}  // namespace repro::vm
