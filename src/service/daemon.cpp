#include "repro/service/daemon.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <map>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "repro/common/assert.hpp"
#include "repro/common/log.hpp"
#include "repro/harness/scheduler.hpp"
#include "repro/service/cellspec.hpp"
#include "repro/service/protocol.hpp"
#include "repro/service/worker.hpp"

namespace repro::service {

namespace {

std::int64_t now_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  REPRO_REQUIRE_MSG(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                    "cannot make descriptor non-blocking");
}

}  // namespace

struct SweepDaemon::Impl {
  /// A client that asked for a cell: reply goes to request index
  /// `index` on connection `client` (an id, not an fd -- fds are
  /// reused by the kernel, ids never are).
  struct Waiter {
    std::uint64_t client = 0;
    std::size_t index = 0;
  };

  /// One pool slot: a forked worker and what it is doing.
  struct Slot {
    WorkerHandle worker;
    bool alive = false;
    bool busy = false;
    std::uint64_t identity = 0;
    bool is_dup = false;
    /// The cell was already answered by the other racer; this slot's
    /// eventual reply is only checked against the winner's digest.
    bool confirm_only = false;
    std::uint64_t expect_digest = 0;
    std::int64_t deadline_at = 0;  // 0 = no deadline armed
    /// Bytes read off the (non-blocking) worker socket but not yet
    /// assembled into a frame. A worker that dribbles a large reply
    /// must not stall the poll loop.
    std::string inbuf;
    /// Bumped on every respawn: frame handling can tear down and
    /// respawn this very slot, after which buffered bytes and EOF
    /// belong to the dead worker, not the new one.
    std::uint64_t gen = 0;
  };

  /// One deduplicated unit of work, keyed by config identity.
  struct Cell {
    std::string spec_line;
    std::uint32_t attempts = 0;       // dispatches so far
    std::int64_t not_before = 0;      // backoff gate
    std::int64_t dispatched_at = 0;
    int primary = -1;
    int dup = -1;
    bool duplicated = false;          // at most one straggler duplicate
    std::vector<Waiter> waiters;
  };

  struct Conn {
    int fd = -1;
    std::string inbuf;
    bool admitted = false;
    std::size_t total = 0;
    std::size_t outstanding = 0;
    std::size_t failed = 0;
    std::size_t cached = 0;
  };

  explicit Impl(SweepDaemon& daemon) : d(daemon) {}

  SweepDaemon& d;
  int listen_fd = -1;
  bool draining = false;
  std::uint64_t next_client = 1;
  std::size_t admitted_active = 0;
  std::map<std::uint64_t, Conn> conns;
  std::unordered_map<std::uint64_t, Cell> cells;
  std::deque<std::uint64_t> queue;  // identities awaiting a slot
  std::vector<Slot> slots;

  // ---- lifecycle ---------------------------------------------------

  void run() {
    bind_and_listen();
    slots.resize(std::max<std::size_t>(1, d.config_.workers));
    for (std::size_t i = 0; i < slots.size(); ++i) {
      spawn_slot(i);
    }
    REPRO_LOG_INFO("sweepd: serving on ", d.config_.socket_path, " with ",
                   slots.size(), " workers");
    while (true) {
      dispatch_ready();
      maybe_duplicate_straggler();
      if (draining && cells.empty() && conns.empty()) {
        break;
      }
      poll_once();
      check_deadlines();
    }
    cleanup();
  }

  void bind_and_listen() {
    listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    REPRO_REQUIRE_MSG(listen_fd >= 0, "cannot create service socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    REPRO_REQUIRE_MSG(
        d.config_.socket_path.size() < sizeof(addr.sun_path),
        "service socket path too long for sockaddr_un");
    std::strncpy(addr.sun_path, d.config_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(d.config_.socket_path.c_str());
    REPRO_REQUIRE_MSG(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr)) == 0,
                      "cannot bind service socket");
    REPRO_REQUIRE_MSG(::listen(listen_fd, 16) == 0,
                      "cannot listen on service socket");
    set_nonblocking(listen_fd);
  }

  void cleanup() {
    // Workers still alive here are either idle (EOF on their socket
    // ends them) or wedged by the hang fault (only SIGKILL does).
    // Every cell is already answered, so SIGKILL is safe and prompt.
    for (Slot& slot : slots) {
      if (!slot.alive) {
        continue;
      }
      ::close(slot.worker.fd);
      ::kill(slot.worker.pid, SIGKILL);
      int status = 0;
      ::waitpid(slot.worker.pid, &status, 0);
      slot.alive = false;
    }
    d.cache_.flush_snapshot();
    ::close(listen_fd);
    ::unlink(d.config_.socket_path.c_str());
    for (auto& [id, conn] : conns) {
      ::close(conn.fd);
    }
    conns.clear();
  }

  // ---- worker pool -------------------------------------------------

  void spawn_slot(std::size_t i) {
    // The child must not keep inherited descriptors open: a worker
    // holding a copy of a client fd would mask the EOF the client
    // relies on, and a copy of a sibling's socket would mask a crash.
    std::vector<int> to_close;
    to_close.push_back(listen_fd);
    to_close.push_back(d.wake_read_);
    to_close.push_back(d.wake_write_);
    for (const auto& [id, conn] : conns) {
      to_close.push_back(conn.fd);
    }
    for (const Slot& other : slots) {
      if (other.alive) {
        to_close.push_back(other.worker.fd);
      }
    }
    slots[i].worker = spawn_worker(d.config_.faults, [to_close] {
      for (const int fd : to_close) {
        if (fd >= 0) {
          ::close(fd);
        }
      }
    });
    set_nonblocking(slots[i].worker.fd);
    slots[i].alive = true;
    slots[i].busy = false;
    slots[i].is_dup = false;
    slots[i].confirm_only = false;
    slots[i].deadline_at = 0;
    slots[i].inbuf.clear();
    ++slots[i].gen;
    ++d.stats_.workers_spawned;
  }

  [[nodiscard]] int find_idle_slot() const {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].alive && !slots[i].busy) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  /// Sends a kCellTask; returns false when the worker turned out to be
  /// dead (the slot is torn down and respawned, the cell untouched).
  bool dispatch_to(std::size_t slot_idx, std::uint64_t identity, Cell& cell,
                   bool as_dup) {
    Slot& slot = slots[slot_idx];
    const std::uint32_t attempt = cell.attempts;
    std::ostringstream task;
    task << "attempt=" << attempt << '\n' << cell.spec_line << '\n';
    try {
      write_frame(slot.worker.fd, FrameType::kCellTask, task.str());
    } catch (const ProtocolError&) {
      // Died while idle; reclaim quietly -- the cell was never charged
      // an attempt.
      reap_slot(slot_idx);
      if (!(draining && cells.empty())) {
        spawn_slot(slot_idx);
      }
      return false;
    }
    ++cell.attempts;
    slot.busy = true;
    slot.identity = identity;
    slot.is_dup = as_dup;
    slot.confirm_only = false;
    slot.deadline_at = d.config_.cell_deadline_ms == 0
                           ? 0
                           : now_ms() + d.config_.cell_deadline_ms;
    cell.dispatched_at = now_ms();
    if (as_dup) {
      cell.dup = static_cast<int>(slot_idx);
    } else {
      cell.primary = static_cast<int>(slot_idx);
      if (attempt == 0) {
        ++d.stats_.dispatches;
      } else {
        ++d.stats_.redispatches;
      }
    }
    return true;
  }

  void dispatch_ready() {
    while (true) {
      const int idle = find_idle_slot();
      if (idle < 0) {
        return;
      }
      const std::int64_t now = now_ms();
      bool dispatched = false;
      for (auto it = queue.begin(); it != queue.end(); ++it) {
        const auto cell_it = cells.find(*it);
        if (cell_it == cells.end()) {
          it = queue.erase(it);
          // erase invalidates; restart the scan (queue is short).
          dispatched = true;
          break;
        }
        if (cell_it->second.not_before > now) {
          continue;  // backing off; maybe a later cell is ready
        }
        const std::uint64_t identity = *it;
        queue.erase(it);
        if (!dispatch_to(static_cast<std::size_t>(idle), identity,
                         cells.at(identity), /*as_dup=*/false)) {
          // The idle worker was dead; dispatch_to respawned the slot
          // but the cell must go back in line or it is orphaned --
          // primary stays -1, so neither straggler duplication nor
          // deadline checks would ever touch it again.
          queue.push_front(identity);
        }
        dispatched = true;
        break;
      }
      if (!dispatched) {
        return;
      }
    }
  }

  void maybe_duplicate_straggler() {
    if (!d.config_.straggler_duplication) {
      return;
    }
    const int idle = find_idle_slot();
    if (idle < 0 || !queue.empty()) {
      return;
    }
    // Pool idles while cells are in flight: re-issue the one that has
    // been running longest (and was not already duplicated). First
    // byte-identical reply wins.
    std::uint64_t oldest_identity = 0;
    Cell* oldest = nullptr;
    for (auto& [identity, cell] : cells) {
      if (cell.primary < 0 || cell.duplicated) {
        continue;
      }
      if (oldest == nullptr || cell.dispatched_at < oldest->dispatched_at) {
        oldest = &cell;
        oldest_identity = identity;
      }
    }
    if (oldest == nullptr) {
      return;
    }
    oldest->duplicated = true;
    if (dispatch_to(static_cast<std::size_t>(idle), oldest_identity, *oldest,
                    /*as_dup=*/true)) {
      ++d.stats_.straggler_duplicates;
      REPRO_LOG_DEBUG("sweepd: duplicated straggler cell ", oldest_identity);
    } else {
      // The would-be duplicate never launched; leave the cell eligible
      // for duplication on a later idle tick.
      oldest->duplicated = false;
    }
  }

  /// Closes + SIGKILLs + waitpid()s a slot. Does not touch its cell.
  void reap_slot(std::size_t slot_idx) {
    Slot& slot = slots[slot_idx];
    ::close(slot.worker.fd);
    ::kill(slot.worker.pid, SIGKILL);  // ESRCH for already-dead: fine
    int status = 0;
    ::waitpid(slot.worker.pid, &status, 0);
    slot.alive = false;
    slot.busy = false;
    slot.inbuf.clear();
    ++slot.gen;
  }

  /// A busy worker is gone (crash, garble-kill or deadline-kill):
  /// reclaim the slot, then either re-dispatch its cell with backoff
  /// or fail it typed once the attempt budget is spent.
  void on_slot_death(std::size_t slot_idx, harness::FailureClass cls,
                     const std::string& message) {
    Slot& slot = slots[slot_idx];
    const bool had_cell = slot.busy && !slot.confirm_only;
    const std::uint64_t identity = slot.identity;
    const bool was_dup = slot.is_dup;
    reap_slot(slot_idx);
    if (!draining || !cells.empty()) {
      spawn_slot(slot_idx);
    }
    if (!had_cell) {
      return;
    }
    const auto it = cells.find(identity);
    if (it == cells.end()) {
      return;
    }
    Cell& cell = it->second;
    if (was_dup) {
      cell.dup = -1;
    } else {
      cell.primary = -1;
    }
    if (cell.primary >= 0 || cell.dup >= 0) {
      return;  // the other racer is still computing this cell
    }
    if (cell.attempts >= d.config_.max_attempts) {
      fail_cell(identity, cls,
                message + " (after " + std::to_string(cell.attempts) +
                    " dispatch attempts)");
      return;
    }
    // Exponential backoff before the re-dispatch: a crashing cell gets
    // attempts, not a tight respawn loop.
    const std::int64_t backoff =
        static_cast<std::int64_t>(d.config_.backoff_base_ms)
        << (cell.attempts - 1);
    cell.not_before = now_ms() + backoff;
    queue.push_back(identity);
    REPRO_LOG_WARN("sweepd: cell ", identity, " attempt ", cell.attempts,
                   " failed (", failure_class_name(cls), "); re-dispatch in ",
                   backoff, "ms");
  }

  void check_deadlines() {
    const std::int64_t now = now_ms();
    for (std::size_t i = 0; i < slots.size(); ++i) {
      Slot& slot = slots[i];
      if (!slot.alive || !slot.busy || slot.deadline_at == 0 ||
          now < slot.deadline_at) {
        continue;
      }
      ++d.stats_.worker_deadline_kills;
      if (slot.confirm_only) {
        // Racing loser blew the deadline after the winner answered:
        // reclaim the slot, nothing to re-dispatch.
        reap_slot(i);
        if (!draining || !cells.empty()) {
          spawn_slot(i);
        }
        continue;
      }
      on_slot_death(i, harness::FailureClass::kTimeout,
                    "worker exceeded the " +
                        std::to_string(d.config_.cell_deadline_ms) +
                        "ms cell deadline and was killed");
    }
  }

  // ---- event loop --------------------------------------------------

  void poll_once() {
    enum class Kind : std::uint8_t { kListen, kWake, kConn, kSlot };
    struct Entry {
      Kind kind;
      std::uint64_t id;  // conn id or slot index
    };
    std::vector<pollfd> fds;
    std::vector<Entry> entries;
    if (!draining) {
      fds.push_back({listen_fd, POLLIN, 0});
      entries.push_back({Kind::kListen, 0});
    }
    fds.push_back({d.wake_read_, POLLIN, 0});
    entries.push_back({Kind::kWake, 0});
    for (const auto& [id, conn] : conns) {
      fds.push_back({conn.fd, POLLIN, 0});
      entries.push_back({Kind::kConn, id});
    }
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].alive) {
        fds.push_back({slots[i].worker.fd, POLLIN, 0});
        entries.push_back({Kind::kSlot, i});
      }
    }
    const int timeout = poll_timeout_ms();
    const int n = ::poll(fds.data(), fds.size(), timeout);
    if (n < 0) {
      REPRO_REQUIRE_MSG(errno == EINTR, "poll failed in sweepd loop");
      return;
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) {
        continue;
      }
      switch (entries[i].kind) {
        case Kind::kListen:
          accept_clients();
          break;
        case Kind::kWake:
          drain_wake_pipe();
          break;
        case Kind::kConn:
          on_conn_readable(entries[i].id);
          break;
        case Kind::kSlot:
          on_slot_readable(static_cast<std::size_t>(entries[i].id));
          break;
      }
    }
  }

  [[nodiscard]] int poll_timeout_ms() const {
    const std::int64_t now = now_ms();
    std::int64_t next = now + 500;  // idle tick ceiling
    for (const Slot& slot : slots) {
      if (slot.alive && slot.busy && slot.deadline_at != 0) {
        next = std::min(next, slot.deadline_at);
      }
    }
    for (const std::uint64_t identity : queue) {
      const auto it = cells.find(identity);
      if (it != cells.end() && it->second.not_before > now) {
        next = std::min(next, it->second.not_before);
      }
    }
    return static_cast<int>(std::max<std::int64_t>(0, next - now));
  }

  void drain_wake_pipe() {
    char buf[64];
    while (::read(d.wake_read_, buf, sizeof(buf)) > 0) {
    }
    begin_drain();
  }

  void begin_drain() {
    if (draining) {
      return;
    }
    draining = true;
    REPRO_LOG_INFO("sweepd: draining (", cells.size(), " cells in flight)");
    // Connections that never sent a request get no service now.
    std::vector<std::uint64_t> idle_conns;
    for (const auto& [id, conn] : conns) {
      if (!conn.admitted) {
        idle_conns.push_back(id);
      }
    }
    for (const std::uint64_t id : idle_conns) {
      close_conn(id);
    }
  }

  void accept_clients() {
    while (true) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        return;  // EAGAIN or a transient error; poll will re-arm
      }
      set_nonblocking(fd);
      const std::uint64_t id = next_client++;
      Conn conn;
      conn.fd = fd;
      conns.emplace(id, std::move(conn));
    }
  }

  void close_conn(std::uint64_t id) {
    const auto it = conns.find(id);
    if (it == conns.end()) {
      return;
    }
    if (it->second.admitted) {
      --admitted_active;
    }
    ::close(it->second.fd);
    conns.erase(it);
  }

  /// Best-effort frame to a client; a write failure closes the
  /// connection (its cells keep running -- other waiters or the cache
  /// still want them).
  bool send_to_conn(std::uint64_t id, FrameType type,
                    const std::string& payload) {
    const auto it = conns.find(id);
    if (it == conns.end()) {
      return false;
    }
    try {
      write_frame(it->second.fd, type, payload);
      return true;
    } catch (const ProtocolError&) {
      close_conn(id);
      return false;
    }
  }

  void on_conn_readable(std::uint64_t id) {
    auto it = conns.find(id);
    if (it == conns.end()) {
      return;
    }
    Conn& conn = it->second;
    char buf[4096];
    bool saw_eof = false;
    while (true) {
      const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
      if (n > 0) {
        conn.inbuf.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      // EOF or hard error: the client is gone -- but frames it finished
      // writing before closing (a fire-and-forget kShutdown) are already
      // in inbuf and still count. Parse them, then close.
      saw_eof = true;
      break;
    }
    while (true) {
      Frame frame;
      bool got = false;
      try {
        got = try_extract_frame(&conn.inbuf, &frame);
      } catch (const ProtocolError& e) {
        ++d.stats_.protocol_errors;
        send_to_conn(id, FrameType::kError,
                     std::string("garbled request: ") + e.what());
        close_conn(id);
        return;
      }
      if (!got) {
        break;
      }
      if (frame.type == FrameType::kShutdown) {
        begin_drain();
        close_conn(id);
        return;
      }
      if (frame.type == FrameType::kSweepRequest) {
        if (!handle_request(id, frame.payload)) {
          return;  // connection was closed
        }
        continue;
      }
      ++d.stats_.protocol_errors;
      send_to_conn(id, FrameType::kError, "unexpected frame type");
      close_conn(id);
      return;
    }
    if (saw_eof) {
      // Cells the departed client was waiting for keep running into
      // the cache.
      close_conn(id);
    }
  }

  /// Plans one admitted request. Returns false when the connection no
  /// longer exists afterwards.
  bool handle_request(std::uint64_t id, const std::string& payload) {
    {
      const auto it = conns.find(id);
      if (it == conns.end()) {
        return false;
      }
      if (it->second.admitted) {
        send_to_conn(id, FrameType::kError,
                     "one sweep request per connection");
        close_conn(id);
        return false;
      }
    }
    if (draining || admitted_active >= d.config_.max_pending_requests) {
      // Load shedding: an explicit BUSY beats an unbounded queue --
      // the client can back off or go elsewhere, and the daemon's
      // memory stays bounded.
      ++d.stats_.requests_shed_busy;
      send_to_conn(id, FrameType::kBusy, "");
      close_conn(id);
      return false;
    }
    SweepRequest request;
    std::string error;
    if (!SweepRequest::decode(payload, &request, &error)) {
      ++d.stats_.protocol_errors;
      send_to_conn(id, FrameType::kError, "bad sweep request: " + error);
      close_conn(id);
      return false;
    }
    ++d.stats_.requests_admitted;
    ++admitted_active;
    {
      Conn& conn = conns.at(id);
      conn.admitted = true;
      conn.total = request.cells.size();
    }
    for (std::size_t i = 0; i < request.cells.size(); ++i) {
      const CellSpec& spec = request.cells[i];
      const std::uint64_t identity = spec.identity();
      if (const auto hit = d.cache_.lookup(identity)) {
        ++d.stats_.cache_hits;
        if (!send_to_conn(id, FrameType::kCellResult,
                          "index=" + std::to_string(i) + "\ncached=1\n" +
                              *hit)) {
          return false;
        }
        conns.at(id).cached += 1;
        continue;
      }
      const auto cell_it = cells.find(identity);
      if (cell_it != cells.end()) {
        // Identical cell already queued or in flight (possibly for
        // another client): join its waiter list, compute once.
        ++d.stats_.dedup_joins;
        cell_it->second.waiters.push_back(Waiter{id, i});
      } else {
        ++d.stats_.cells_planned;
        Cell cell;
        cell.spec_line = spec.format();
        cell.waiters.push_back(Waiter{id, i});
        cells.emplace(identity, std::move(cell));
        queue.push_back(identity);
      }
      conns.at(id).outstanding += 1;
    }
    const auto it = conns.find(id);
    if (it == conns.end()) {
      return false;
    }
    if (it->second.outstanding == 0) {
      finish_conn(id);
      return false;
    }
    return true;
  }

  void finish_conn(std::uint64_t id) {
    const auto it = conns.find(id);
    if (it == conns.end()) {
      return;
    }
    const Conn& conn = it->second;
    std::ostringstream os;
    os << "cells=" << conn.total << "\nfailed=" << conn.failed
       << "\ncached=" << conn.cached << '\n';
    send_to_conn(id, FrameType::kSweepDone, os.str());
    close_conn(id);
  }

  // ---- cell completion ---------------------------------------------

  void deliver_result(std::uint64_t id, std::size_t index,
                      const std::string& payload) {
    if (!send_to_conn(id, FrameType::kCellResult,
                      "index=" + std::to_string(index) + "\ncached=0\n" +
                          payload)) {
      return;
    }
    const auto it = conns.find(id);
    if (it == conns.end()) {
      return;
    }
    if (--it->second.outstanding == 0) {
      finish_conn(id);
    }
  }

  void deliver_failure(std::uint64_t id, std::size_t index,
                       harness::FailureClass cls, const std::string& message) {
    if (!send_to_conn(id, FrameType::kCellFailed,
                      "index=" + std::to_string(index) +
                          "\nclass=" + failure_class_name(cls) +
                          "\nmessage=" + message)) {
      return;
    }
    const auto it = conns.find(id);
    if (it == conns.end()) {
      return;
    }
    it->second.failed += 1;
    if (--it->second.outstanding == 0) {
      finish_conn(id);
    }
  }

  void complete_cell(std::size_t slot_idx, const std::string& payload) {
    Slot& slot = slots[slot_idx];
    const std::uint64_t identity = slot.identity;
    slot.busy = false;
    const auto it = cells.find(identity);
    if (it == cells.end()) {
      return;  // late reply for an already-answered cell
    }
    Cell& cell = it->second;
    // If the other racer is still running, demote it to a pure
    // validation run: its reply (if it ever comes) is checked against
    // this digest, and its death is a non-event.
    const int other_idx =
        slot.is_dup ? cell.primary : (cell.duplicated ? cell.dup : -1);
    if (other_idx >= 0) {
      const auto other = static_cast<std::size_t>(other_idx);
      if (other != slot_idx && slots[other].alive && slots[other].busy) {
        slots[other].confirm_only = true;
        slots[other].expect_digest = frame_digest(payload);
      }
    }
    d.cache_.insert(identity, payload);
    ++d.stats_.cells_completed;
    const std::vector<Waiter> waiters = std::move(cell.waiters);
    cells.erase(it);
    for (const Waiter& w : waiters) {
      deliver_result(w.client, w.index, payload);
    }
  }

  void fail_cell(std::uint64_t identity, harness::FailureClass cls,
                 const std::string& message) {
    const auto it = cells.find(identity);
    if (it == cells.end()) {
      return;
    }
    ++d.stats_.cells_failed;
    const std::vector<Waiter> waiters = std::move(it->second.waiters);
    cells.erase(it);
    REPRO_LOG_WARN("sweepd: cell ", identity, " failed [",
                   failure_class_name(cls), "]: ", message);
    for (const Waiter& w : waiters) {
      deliver_failure(w.client, w.index, cls, message);
    }
  }

  void on_slot_readable(std::size_t slot_idx) {
    Slot& slot = slots[slot_idx];
    if (!slot.alive) {
      return;
    }
    const std::uint64_t gen = slot.gen;
    // Drain whatever the kernel has for us and return to the loop:
    // poll() only promises *some* bytes, and a worker that stalls mid
    // frame (or dribbles a large reply) must not block the daemon --
    // that would freeze every client and, worse, check_deadlines(),
    // the very thing that reclaims a wedged worker.
    char buf[4096];
    bool saw_eof = false;
    while (true) {
      const ssize_t n = ::read(slot.worker.fd, buf, sizeof(buf));
      if (n > 0) {
        slot.inbuf.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      saw_eof = true;
      break;
    }
    // Frames first, EOF second: a worker that wrote its reply and then
    // exited still gets that reply honored.
    while (true) {
      Frame frame;
      bool got = false;
      try {
        got = try_extract_frame(&slot.inbuf, &frame);
      } catch (const ProtocolError& e) {
        // The stream lost sync (torn or garbled frame): nothing this
        // worker says can be trusted any more. Kill it, re-dispatch.
        ++d.stats_.garbled_frames;
        on_slot_death(slot_idx, harness::FailureClass::kCrash,
                      std::string("worker reply failed its frame fence: ") +
                          e.what());
        return;
      }
      if (!got) {
        break;
      }
      handle_slot_frame(slot_idx, frame);
      if (slot.gen != gen) {
        return;  // the frame killed the slot; a fresh worker owns it now
      }
    }
    if (!saw_eof) {
      return;
    }
    if (!slot.inbuf.empty()) {
      // EOF with a partial frame buffered: torn reply.
      ++d.stats_.garbled_frames;
      on_slot_death(slot_idx, harness::FailureClass::kCrash,
                    "worker died leaving a torn frame");
      return;
    }
    if (!slot.busy) {
      // An idle worker died (e.g. killed from outside): respawn.
      reap_slot(slot_idx);
      if (!draining || !cells.empty()) {
        spawn_slot(slot_idx);
      }
      return;
    }
    ++d.stats_.worker_crashes;
    on_slot_death(slot_idx, harness::FailureClass::kCrash,
                  "worker process exited mid-cell");
  }

  /// One complete, digest-fenced frame from a worker.
  void handle_slot_frame(std::size_t slot_idx, const Frame& frame) {
    Slot& slot = slots[slot_idx];
    if (slot.confirm_only) {
      if (frame.type == FrameType::kCellReply) {
        if (frame_digest(frame.payload) == slot.expect_digest) {
          ++d.stats_.straggler_confirmations;
        } else {
          ++d.stats_.straggler_mismatches;
          REPRO_LOG_WARN("sweepd: straggler duplicate disagreed with the "
                         "winning reply -- determinism violation");
        }
      }
      slot.busy = false;
      slot.confirm_only = false;
      return;
    }
    if (!slot.busy) {
      // A frame from a worker that was never given a task: protocol
      // violation, same treatment as a garbled stream.
      ++d.stats_.protocol_errors;
      on_slot_death(slot_idx, harness::FailureClass::kCrash,
                    "unsolicited frame from an idle worker");
      return;
    }
    if (frame.type == FrameType::kCellReply) {
      complete_cell(slot_idx, frame.payload);
      return;
    }
    if (frame.type == FrameType::kCellError) {
      // The cell itself is broken (deterministic simulation failure):
      // retrying is pointless, fail it typed right away.
      const std::uint64_t identity = slot.identity;
      slot.busy = false;
      std::string message = frame.payload;
      const std::size_t at = message.find("message=");
      if (at != std::string::npos) {
        message = message.substr(at + 8);
      }
      const auto it = cells.find(identity);
      if (it != cells.end()) {
        Cell& cell = it->second;
        if (slot.is_dup) {
          cell.dup = -1;
        } else {
          cell.primary = -1;
        }
      }
      fail_cell(identity, harness::FailureClass::kFault, message);
      return;
    }
    // A well-formed frame of a type no worker should send: the worker
    // is off-protocol and the cell it holds would otherwise hang until
    // a deadline that may never be armed (cell_deadline_ms=0 default).
    ++d.stats_.protocol_errors;
    on_slot_death(slot_idx, harness::FailureClass::kCrash,
                  "unexpected frame type " +
                      std::to_string(static_cast<std::uint32_t>(frame.type)) +
                      " from worker");
  }
};

SweepDaemon::SweepDaemon(DaemonConfig config)
    : config_(std::move(config)), cache_(config_.cache) {
  config_.faults.validate();
  REPRO_REQUIRE_MSG(!config_.socket_path.empty(),
                    "sweepd needs a socket path");
  REPRO_REQUIRE_MSG(config_.max_attempts >= 1,
                    "sweepd max_attempts must be >= 1");
  int fds[2];
  REPRO_REQUIRE_MSG(::pipe2(fds, O_CLOEXEC | O_NONBLOCK) == 0,
                    "cannot create sweepd wake pipe");
  wake_read_ = fds[0];
  wake_write_ = fds[1];
}

SweepDaemon::~SweepDaemon() {
  if (wake_read_ >= 0) {
    ::close(wake_read_);
  }
  if (wake_write_ >= 0) {
    ::close(wake_write_);
  }
}

void SweepDaemon::run() {
  Impl impl(*this);
  impl.run();
}

void SweepDaemon::request_shutdown() {
  const char byte = 'q';
  // A full pipe already guarantees a pending wake-up.
  [[maybe_unused]] const ssize_t n = ::write(wake_write_, &byte, 1);
}

namespace {
SweepDaemon* g_signal_daemon = nullptr;

extern "C" void sweepd_signal_handler(int /*signo*/) {
  if (g_signal_daemon != nullptr) {
    // request_shutdown only write()s to a pipe: async-signal-safe.
    g_signal_daemon->request_shutdown();
  }
}
}  // namespace

void install_signal_handlers(SweepDaemon* daemon) {
  g_signal_daemon = daemon;
  struct sigaction sa{};
  sa.sa_handler = sweepd_signal_handler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: poll must wake
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

}  // namespace repro::service
