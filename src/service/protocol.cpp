#include "repro/service/protocol.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace repro::service {

namespace {

// FNV-1a 64, same constants as repro/tracefmt/format.hpp. Re-derived
// here so the protocol library does not pull the trace container in.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ull;

/// How long a single frame write may wait for the peer to drain its
/// socket buffer before the peer is declared dead. Local peers that
/// are alive drain in microseconds; only a wedged or abandoned one
/// stays full this long.
constexpr int kWriteStallTimeoutMs = 2000;

/// send() the whole buffer; EINTR-safe, SIGPIPE-free. Falls back to
/// write() for plain descriptors (pipes in tests) where send() yields
/// ENOTSOCK. On a non-blocking descriptor a full socket buffer is not
/// a dead peer: wait (bounded) for writability rather than throwing.
void send_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, data + off, size - off);
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd pfd{fd, POLLOUT, 0};
        const int ready = ::poll(&pfd, 1, kWriteStallTimeoutMs);
        if (ready > 0) {
          continue;
        }
        if (ready < 0 && errno == EINTR) {
          continue;
        }
        throw ProtocolError("frame write stalled: peer is not draining");
      }
      throw ProtocolError(std::string("frame write failed: ") +
                          std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

enum class RecvResult : std::uint8_t { kFull, kEofAtStart, kEofMidway };

/// recv() exactly `size` bytes. Distinguishes EOF before the first
/// byte (orderly close) from EOF midway (torn frame).
RecvResult recv_all(int fd, char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::read(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw ProtocolError(std::string("frame read failed: ") +
                          std::strerror(errno));
    }
    if (n == 0) {
      return off == 0 ? RecvResult::kEofAtStart : RecvResult::kEofMidway;
    }
    off += static_cast<std::size_t>(n);
  }
  return RecvResult::kFull;
}

/// Validates everything checkable from the header alone.
void check_header(const FrameHeader& header) {
  if (header.magic != kFrameMagic) {
    throw ProtocolError("bad frame magic: stream is not RSVC or lost sync");
  }
  if (header.version != kProtocolVersion) {
    throw ProtocolError("unsupported RSVC protocol version " +
                        std::to_string(header.version));
  }
  if (header.payload_bytes > kMaxFramePayload) {
    throw ProtocolError("frame payload length " +
                        std::to_string(header.payload_bytes) +
                        " exceeds limit: garbled header");
  }
}

void check_digest(const FrameHeader& header, std::string_view payload) {
  if (frame_digest(payload) != header.payload_digest) {
    throw ProtocolError("frame payload digest mismatch: torn or garbled "
                        "frame");
  }
}

}  // namespace

std::uint64_t frame_digest(std::string_view payload) {
  std::uint64_t h = kFnvOffset;
  for (const char c : payload) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

void write_frame(int fd, FrameType type, std::string_view payload) {
  FrameHeader header;
  header.type = static_cast<std::uint32_t>(type);
  header.payload_bytes = payload.size();
  header.payload_digest = frame_digest(payload);
  // One buffer, one send: keeps header+payload adjacent so a SIGKILL
  // between syscalls cannot strand a header without its payload for
  // small frames.
  std::string buf;
  buf.reserve(sizeof(header) + payload.size());
  buf.append(reinterpret_cast<const char*>(&header), sizeof(header));
  buf.append(payload.data(), payload.size());
  send_all(fd, buf.data(), buf.size());
}

void write_garbled_frame(int fd, FrameType type, std::string_view payload) {
  FrameHeader header;
  header.type = static_cast<std::uint32_t>(type);
  header.payload_bytes = payload.size();
  header.payload_digest = frame_digest(payload);
  std::string buf;
  buf.reserve(sizeof(header) + payload.size());
  buf.append(reinterpret_cast<const char*>(&header), sizeof(header));
  buf.append(payload.data(), payload.size());
  if (payload.empty()) {
    // Nothing to corrupt in the payload: lie about its length instead.
    FrameHeader lie = header;
    lie.payload_bytes = 1;
    std::memcpy(buf.data(), &lie, sizeof(lie));
    buf.push_back('X');
  } else {
    // Flip one payload byte *after* the digest was taken over the
    // intact bytes: the receiver's fence must trip.
    buf[sizeof(header) + payload.size() / 2] ^= 0x5a;
  }
  send_all(fd, buf.data(), buf.size());
}

void write_torn_frame_prefix(int fd, FrameType type,
                             std::string_view payload) {
  FrameHeader header;
  header.type = static_cast<std::uint32_t>(type);
  header.payload_bytes = payload.size();
  header.payload_digest = frame_digest(payload);
  std::string buf;
  buf.reserve(sizeof(header) + payload.size());
  buf.append(reinterpret_cast<const char*>(&header), sizeof(header));
  buf.append(payload.data(), payload.size());
  // Always strictly shorter than the full frame: the receiver is left
  // holding bytes that can never complete.
  const std::size_t cut = payload.empty()
                              ? sizeof(header) / 2
                              : sizeof(header) + payload.size() / 2;
  send_all(fd, buf.data(), cut);
}

ReadResult read_frame(int fd, Frame* out) {
  FrameHeader header;
  switch (recv_all(fd, reinterpret_cast<char*>(&header), sizeof(header))) {
    case RecvResult::kEofAtStart:
      return ReadResult::kEof;
    case RecvResult::kEofMidway:
      throw ProtocolError("EOF inside frame header: torn frame");
    case RecvResult::kFull:
      break;
  }
  check_header(header);
  std::string payload(header.payload_bytes, '\0');
  if (!payload.empty() &&
      recv_all(fd, payload.data(), payload.size()) != RecvResult::kFull) {
    throw ProtocolError("EOF inside frame payload: torn frame");
  }
  check_digest(header, payload);
  out->type = static_cast<FrameType>(header.type);
  out->payload = std::move(payload);
  return ReadResult::kFrame;
}

bool try_extract_frame(std::string* buffer, Frame* out) {
  if (buffer->size() < sizeof(FrameHeader)) {
    return false;
  }
  FrameHeader header;
  std::memcpy(&header, buffer->data(), sizeof(header));
  check_header(header);
  const std::size_t total = sizeof(header) + header.payload_bytes;
  if (buffer->size() < total) {
    return false;
  }
  const std::string_view payload(buffer->data() + sizeof(header),
                                 header.payload_bytes);
  check_digest(header, payload);
  out->type = static_cast<FrameType>(header.type);
  out->payload.assign(payload.data(), payload.size());
  buffer->erase(0, total);
  return true;
}

}  // namespace repro::service
