// The wire form of one sweep cell: a single key=value line that both
// endpoints expand to the same harness::RunConfig -- and therefore the
// same config_identity hash -- independently. The spec deliberately
// exposes only the behaviour-relevant knobs (benchmark, placement,
// engines, iterations, scaling, seeds, fault rate); host-side
// supervision (deadlines, retries, caching) belongs to the daemon's
// configuration, not to the cell.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "repro/harness/run.hpp"

namespace repro::service {

struct CellSpec {
  std::string benchmark = "CG";
  std::string placement = "ft";      // ft | rr | rand | wc
  bool kernel_migration = false;
  std::string upm = "off";           // off | dist | recrep
  std::uint32_t iterations = 0;      // 0 = benchmark default
  std::uint32_t compute_scale = 1;
  double size_scale = 1.0;
  std::uint64_t seed = 12345;
  /// In-simulation fault injection (repro::fault), all classes at this
  /// rate; 0 = no injector attached.
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 0;      // 0 = the fault plan's default

  /// One line of space-separated key=value pairs, e.g.
  /// "benchmark=CG placement=ft upm=dist iterations=3 size_scale=0.25".
  /// Only non-default fields are emitted; format() and parse() are
  /// inverse on the round trip.
  [[nodiscard]] std::string format() const;

  /// Strict parse of one format() line: unknown keys, malformed
  /// numbers and out-of-range values all fail with a diagnostic in
  /// *error rather than defaulting.
  [[nodiscard]] static bool parse(const std::string& line, CellSpec* out,
                                  std::string* error);

  /// Expands to the RunConfig both endpoints agree on. Tracing is
  /// always on (config.trace = true): the trace digest is how cached
  /// and recomputed results are proven identical. Throws
  /// ContractViolation on an invalid upm mode.
  [[nodiscard]] harness::RunConfig to_config() const;

  /// config_identity(to_config()): the cache / dedup / fault-draw key.
  [[nodiscard]] std::uint64_t identity() const;
};

struct SweepRequest {
  std::vector<CellSpec> cells;

  /// One format() line per cell, newline-terminated.
  [[nodiscard]] std::string encode() const;

  /// Strict decode; empty lines are ignored, any bad line fails.
  [[nodiscard]] static bool decode(const std::string& text, SweepRequest* out,
                                   std::string* error);
};

}  // namespace repro::service
