// The sweep service daemon: accepts framed SweepRequests on a Unix-
// domain socket, plans them into cells keyed by config_identity, and
// dispatches the cells to a pool of forked worker processes.
//
// Robustness machinery (all exercised by the chaos suite in
// tests/test_service.cpp):
//  * per-cell deadlines with SIGKILL escalation -- a hung worker costs
//    one slot for deadline_ms, never the daemon;
//  * worker-crash detection via socket EOF + waitpid, with bounded
//    re-dispatch (max_attempts) under exponential backoff;
//  * garbled reply frames (digest fence trips) poison the worker: it
//    is killed and the cell re-dispatched, because a stream that lost
//    sync cannot be trusted for even one more frame;
//  * straggler duplication -- when the pool idles with cells still in
//    flight, the oldest in-flight cell is re-issued once to an idle
//    slot; the first reply wins and the loser's bytes are checked
//    against the winner's (determinism makes the duplicate a free
//    end-to-end validation);
//  * bounded admission -- beyond max_pending_requests concurrent
//    requests, new ones are shed with an explicit kBusy reply instead
//    of queueing without bound;
//  * crash-safe memoized result cache (ResultCache) consulted at
//    admission; in-flight deduplication joins identical cells across
//    requests so a result is computed once and fanned out;
//  * graceful drain -- SIGTERM (via install_signal_handlers) or a
//    kShutdown frame stops admission, finishes every admitted cell,
//    snapshots the cache and reaps every worker before run() returns.
//
// Determinism is what makes the aggressive recovery sound: a cell is
// a pure function of its spec, so re-dispatching after a crash, racing
// a duplicate, or serving from cache are all guaranteed to produce the
// same bytes -- and the service *checks* that where it can.
#pragma once

#include <cstdint>
#include <string>

#include "repro/fault/service.hpp"
#include "repro/service/result_cache.hpp"

namespace repro::service {

struct DaemonConfig {
  std::string socket_path;
  std::size_t workers = 2;
  /// Admitted-but-unfinished requests beyond this are shed with kBusy.
  std::size_t max_pending_requests = 8;
  /// Wall-clock budget per dispatch before SIGKILL; 0 = no deadline.
  std::uint32_t cell_deadline_ms = 0;
  /// Total dispatch attempts per cell (first + re-dispatches).
  std::uint32_t max_attempts = 3;
  /// Re-dispatch backoff: base * 2^(attempt-1) ms.
  std::uint32_t backoff_base_ms = 10;
  bool straggler_duplication = true;
  CacheConfig cache;
  /// Worker-side chaos (injected in the children, observed here).
  fault::ServiceFaultPlan faults;
};

struct ServiceStats {
  std::uint64_t requests_admitted = 0;
  std::uint64_t requests_shed_busy = 0;
  std::uint64_t cells_planned = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t dedup_joins = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t redispatches = 0;
  std::uint64_t straggler_duplicates = 0;
  /// Loser replies whose bytes matched the winner's.
  std::uint64_t straggler_confirmations = 0;
  std::uint64_t straggler_mismatches = 0;
  std::uint64_t worker_crashes = 0;
  std::uint64_t worker_deadline_kills = 0;
  std::uint64_t garbled_frames = 0;
  std::uint64_t workers_spawned = 0;
  std::uint64_t cells_completed = 0;
  std::uint64_t cells_failed = 0;
  std::uint64_t protocol_errors = 0;
};

class SweepDaemon {
 public:
  explicit SweepDaemon(DaemonConfig config);
  ~SweepDaemon();

  SweepDaemon(const SweepDaemon&) = delete;
  SweepDaemon& operator=(const SweepDaemon&) = delete;

  /// Binds the socket, preforks the pool and serves until a drain is
  /// requested and every admitted cell is answered. On return all
  /// workers are reaped, the cache snapshot is flushed and the socket
  /// file removed.
  void run();

  /// Requests a graceful drain; callable from any thread (it writes
  /// one byte to the daemon's wake pipe). install_signal_handlers()
  /// routes SIGTERM/SIGINT here.
  void request_shutdown();

  /// Counters; read after run() returns (or from the run() thread).
  [[nodiscard]] const ServiceStats& stats() const { return stats_; }

  [[nodiscard]] const ResultCache& cache() const { return cache_; }

 private:
  struct Impl;
  friend struct Impl;

  DaemonConfig config_;
  ServiceStats stats_;
  ResultCache cache_;
  int wake_read_ = -1;
  int wake_write_ = -1;
};

/// Installs SIGTERM/SIGINT handlers that request_shutdown() `daemon`
/// (async-signal-safe: the handler only write()s to the wake pipe).
/// Call from repro_sweepd's main only -- the handlers hold a process-
/// global pointer.
void install_signal_handlers(SweepDaemon* daemon);

}  // namespace repro::service
