// The sweep daemon's unit of blast containment: one forked process per
// pool slot, speaking RSVC frames over a socketpair. A worker that
// aborts, hangs or garbles its stream costs the daemon one SIGKILL and
// one respawn -- never the daemon itself, never the other cells.
//
// Child protocol: read kCellTask ("attempt=N\n" + one cellspec line),
// simulate, reply kCellReply (encode_result text) or kCellError
// ("class=fault\nmessage=..." for deterministic simulation failures,
// which the daemon must NOT re-dispatch). EOF or kShutdown on the
// socket ends the child via _exit -- a forked gtest/daemon child must
// never unwind back into its parent's stack.
#pragma once

#include <sys/types.h>

#include <functional>

#include "repro/fault/service.hpp"

namespace repro::service {

struct WorkerHandle {
  pid_t pid = -1;
  /// Parent's end of the socketpair; -1 after the slot is torn down.
  int fd = -1;
};

/// Forks one worker. `in_child` runs first in the child (the daemon
/// uses it to close inherited listener/client/sibling fds so a held-
/// open descriptor cannot mask an EOF); the child then serves
/// worker_loop() on its socket end and _exit()s. Throws
/// ContractViolation when fork or socketpair fails.
[[nodiscard]] WorkerHandle spawn_worker(
    const fault::ServiceFaultPlan& faults,
    const std::function<void()>& in_child = {});

/// The child's serve loop (exposed for in-process protocol tests).
/// Consults `faults` once per task, after the spec is parsed: abort
/// _exit()s mid-cell, hang blocks forever (only SIGKILL reclaims the
/// slot), garble sends the reply through write_garbled_frame so the
/// parent's digest fence trips. Returns on EOF/kShutdown.
void worker_loop(int fd, const fault::ServiceFaultPlan& faults);

}  // namespace repro::service
