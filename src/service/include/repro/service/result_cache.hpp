// Crash-safe memoized result cache for the sweep daemon.
//
// Keyed by config_identity(cell); the value is the cell's
// encode_result() text verbatim (the same bytes a worker replied
// with). Durability is an append-only journal plus a periodic atomic
// snapshot:
//
//   journal.log    RCJE <identity> <bytes> <fnv16hex>\n<payload>\n ...
//   snapshot.txt   RCSS v1 <count>\n followed by RCJE entries,
//                  written via atomic_write_file, oldest first
//
// insert() appends to the journal and fsyncs before returning -- an
// entry is "acknowledged" once insert() returns and recovery must
// never lose it. Every snapshot_every appends the whole cache is
// snapshotted atomically and the journal truncated; a crash between
// the two replays journal entries over the snapshot, which is
// idempotent (same identity -> byte-identical payload, by the
// determinism the simulator guarantees). Recovery reads the snapshot,
// replays the journal in order, and drops a torn tail (incomplete
// header, short payload, digest mismatch) at the first bad byte --
// everything before the tear is kept, nothing after it is trusted.
//
// Recency from lookups is deliberately not durable: only insertions
// are journaled, so a recovered cache has insertion-order recency.
// That can change which entry a later insert evicts, never what a
// lookup returns for a present key.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace repro::service {

struct CacheConfig {
  /// Directory for journal.log / snapshot.txt; empty = memory-only
  /// (no durability, same semantics otherwise).
  std::string dir;
  /// Maximum resident entries; least-recently-used beyond this are
  /// evicted. Must be >= 1.
  std::size_t capacity = 256;
  /// Journal appends between snapshots; 0 = snapshot only on
  /// flush_snapshot().
  std::uint32_t snapshot_every = 64;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t snapshots = 0;
  /// Entries restored at construction (snapshot + journal replay).
  std::uint64_t recovered_entries = 0;
  /// Bytes of torn journal tail discarded at recovery.
  std::uint64_t dropped_torn_bytes = 0;
};

class ResultCache {
 public:
  /// Opens (and recovers) the cache. Throws ContractViolation when the
  /// directory cannot be created or the journal cannot be opened.
  explicit ResultCache(CacheConfig config);
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The payload for `identity`, refreshing its recency; nullopt on
  /// miss.
  [[nodiscard]] std::optional<std::string> lookup(std::uint64_t identity);

  /// Journals (fsync) then inserts, evicting LRU entries beyond
  /// capacity. Re-inserting a present key requires the byte-identical
  /// payload (anything else means the deterministic simulator
  /// contradicted itself) and only refreshes recency.
  void insert(std::uint64_t identity, const std::string& payload);

  /// Snapshots now and truncates the journal (graceful-drain hook).
  void flush_snapshot();

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool contains(std::uint64_t identity) const {
    return index_.count(identity) != 0;
  }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }

  [[nodiscard]] std::string journal_path() const;
  [[nodiscard]] std::string snapshot_path() const;

 private:
  void recover();
  /// Inserts without journaling (recovery path); returns false when
  /// the key was already present.
  bool insert_in_memory(std::uint64_t identity, std::string payload);
  void append_journal(std::uint64_t identity, const std::string& payload);
  void write_snapshot();
  void open_journal();

  CacheConfig config_;
  CacheStats stats_;
  /// Front = most recently used.
  std::list<std::pair<std::uint64_t, std::string>> entries_;
  std::unordered_map<std::uint64_t, decltype(entries_)::iterator> index_;
  int journal_fd_ = -1;
  std::uint32_t appends_since_snapshot_ = 0;
};

/// Formats one journal entry (exposed for the torn-write fuzz tests).
[[nodiscard]] std::string encode_journal_entry(std::uint64_t identity,
                                               const std::string& payload);

}  // namespace repro::service
