// Framed messages for the sweep service (RSVC protocol, version 1).
//
// Every message between client <-> daemon and daemon <-> worker is one
// frame: a fixed 32-byte header (magic, version, type, payload length,
// FNV-1a digest of the payload) followed by the payload bytes. The
// framing reuses the RTRC container's idioms (src/tracefmt): little-
// endian fixed headers, digest-fenced payloads, strict readers that
// throw on anything torn or garbled rather than resynchronising. A
// stream that fails its fence is *poisoned* -- the daemon kills the
// worker / drops the client behind it, because after a bad frame there
// is no way to know where the next one starts.
//
// Payloads are small key=value / line-oriented text (cell specs and
// encode_result() bodies), so the protocol stays inspectable with
// `xxd` while the digest fence still catches every torn write.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace repro::service {

/// Any structural problem with a frame: bad magic or version, an
/// oversized payload, a digest mismatch, or EOF mid-frame.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error(what) {}
};

inline constexpr std::uint32_t kFrameMagic = 0x43565352;  // "RSVC"
inline constexpr std::uint32_t kProtocolVersion = 1;
/// Upper bound on one payload; a header announcing more is garbage,
/// not a request for a 16 EiB allocation.
inline constexpr std::uint64_t kMaxFramePayload = 16ull << 20U;

/// Frame types. Client -> daemon: kSweepRequest, kShutdown. Daemon ->
/// client: kCellResult, kCellFailed, kSweepDone, kBusy, kError.
/// Daemon -> worker: kCellTask. Worker -> daemon: kCellReply,
/// kCellError. Append only.
enum class FrameType : std::uint32_t {
  kSweepRequest = 0,
  kCellResult = 1,
  kCellFailed = 2,
  kSweepDone = 3,
  kBusy = 4,
  kError = 5,
  kShutdown = 6,
  kCellTask = 7,
  kCellReply = 8,
  kCellError = 9,
};

struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint32_t version = kProtocolVersion;
  std::uint32_t type = 0;
  std::uint32_t reserved = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t payload_digest = 0;  // FNV-1a 64 over the payload
};
static_assert(sizeof(FrameHeader) == 32);

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// FNV-1a 64 over payload bytes (same constants as tracefmt).
[[nodiscard]] std::uint64_t frame_digest(std::string_view payload);

/// Writes one complete frame to `fd` (blocking, EINTR-safe, never
/// raises SIGPIPE). Throws ProtocolError on any I/O failure.
void write_frame(int fd, FrameType type, std::string_view payload);

/// Chaos hook: writes a frame whose header digest fences the *intact*
/// payload but whose payload bytes are corrupted, so the receiving
/// read_frame throws ProtocolError (the garbled-frame fault class).
/// Empty payloads corrupt the announced length instead.
void write_garbled_frame(int fd, FrameType type, std::string_view payload);

/// Chaos hook: writes only a strict prefix of the frame (the header
/// plus half the payload; half the header when the payload is empty)
/// and returns, modelling a worker that dies or wedges mid-write (the
/// torn-frame fault class). The receiver must never block waiting for
/// the rest.
void write_torn_frame_prefix(int fd, FrameType type,
                             std::string_view payload);

enum class ReadResult : std::uint8_t {
  kFrame,  ///< one complete, verified frame in *out
  kEof,    ///< orderly EOF at a frame boundary
};

/// Reads one frame (blocking). EOF before the first header byte is an
/// orderly close (kEof); EOF anywhere else, a bad magic/version, an
/// oversized payload or a digest mismatch throws ProtocolError.
[[nodiscard]] ReadResult read_frame(int fd, Frame* out);

/// Incremental variant for the daemon's poll loop: appends nothing
/// itself, but tries to extract one complete frame from the front of
/// `buffer` (bytes received so far). Returns true and erases the
/// frame's bytes on success; false when more bytes are needed. Throws
/// ProtocolError on a garbled prefix (the connection is poisoned).
[[nodiscard]] bool try_extract_frame(std::string* buffer, Frame* out);

}  // namespace repro::service
