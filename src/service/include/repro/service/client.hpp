// Client side of the sweep service: one connection per submitted
// request, framed over the daemon's Unix-domain socket, replies
// collected until kSweepDone (or kBusy / kError) and decoded back into
// harness::RunResults through the same decode_result() a checkpoint
// resume uses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "repro/harness/run.hpp"
#include "repro/harness/scheduler.hpp"
#include "repro/service/cellspec.hpp"

namespace repro::service {

/// Outcome of one requested cell, index-aligned with the request.
struct CellOutcome {
  bool answered = false;  ///< daemon sent a result or a typed failure
  bool ok = false;
  bool cached = false;    ///< served from the daemon's result cache
  harness::FailureClass cls = harness::FailureClass::kFault;
  std::string message;
  harness::RunResult result;  ///< valid when ok
};

struct SweepReply {
  /// Load-shed: the daemon refused admission; nothing was computed.
  bool busy = false;
  /// Request-level failure (protocol error, rejected spec, lost
  /// connection); empty otherwise.
  std::string error;
  std::vector<CellOutcome> cells;
  std::size_t cache_hits = 0;

  [[nodiscard]] bool ok() const;
  /// 0 on success, 2 on busy/request-level error, else the
  /// failure_exit_code of the most severe failed cell.
  [[nodiscard]] int exit_code() const;
};

class SweepClient {
 public:
  /// `connect_wait_ms` bounds how long submit()/shutdown_daemon() keep
  /// retrying the initial connect while the daemon is still binding its
  /// socket (ENOENT / ECONNREFUSED). 0 = fail on the first refusal.
  explicit SweepClient(std::string socket_path,
                       std::uint32_t connect_wait_ms = 2000);

  /// Submits `request` and blocks until the daemon has answered every
  /// cell. Never throws: connection and protocol failures come back in
  /// SweepReply::error.
  [[nodiscard]] SweepReply submit(const SweepRequest& request);

  /// Asks the daemon to drain and exit. Returns false when the daemon
  /// is unreachable.
  bool shutdown_daemon();

 private:
  std::string socket_path_;
  std::uint32_t connect_wait_ms_;
};

}  // namespace repro::service
