#include "repro/service/cellspec.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>

#include "repro/common/assert.hpp"
#include "repro/harness/checkpoint.hpp"

namespace repro::service {

namespace {

/// Doubles survive the round trip through %.17g exactly.
std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

bool parse_u32(const std::string& s, std::uint32_t* out) {
  const auto* end = s.data() + s.size();
  const auto [p, ec] = std::from_chars(s.data(), end, *out);
  return ec == std::errc{} && p == end;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  const auto* end = s.data() + s.size();
  const auto [p, ec] = std::from_chars(s.data(), end, *out);
  return ec == std::errc{} && p == end;
}

bool parse_f64(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  try {
    std::size_t pos = 0;
    *out = std::stod(s, &pos);
    return pos == s.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_bool(const std::string& s, bool* out) {
  if (s == "0" || s == "1") {
    *out = s == "1";
    return true;
  }
  return false;
}

}  // namespace

std::string CellSpec::format() const {
  std::ostringstream os;
  os << "benchmark=" << benchmark << " placement=" << placement;
  if (kernel_migration) {
    os << " kernel_migration=1";
  }
  if (upm != "off") {
    os << " upm=" << upm;
  }
  if (iterations != 0) {
    os << " iterations=" << iterations;
  }
  if (compute_scale != 1) {
    os << " compute_scale=" << compute_scale;
  }
  if (size_scale != 1.0) {
    os << " size_scale=" << format_double(size_scale);
  }
  if (seed != 12345) {
    os << " seed=" << seed;
  }
  if (fault_rate != 0.0) {
    os << " fault_rate=" << format_double(fault_rate);
  }
  if (fault_seed != 0) {
    os << " fault_seed=" << fault_seed;
  }
  return os.str();
}

bool CellSpec::parse(const std::string& line, CellSpec* out,
                     std::string* error) {
  CellSpec spec;
  std::istringstream is(line);
  std::string token;
  bool saw_benchmark = false;
  while (is >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      *error = "cell spec token is not key=value: '" + token + "'";
      return false;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    bool ok = true;
    if (key == "benchmark") {
      spec.benchmark = value;
      saw_benchmark = !value.empty();
    } else if (key == "placement") {
      spec.placement = value;
      ok = value == "ft" || value == "rr" || value == "rand" || value == "wc";
    } else if (key == "kernel_migration") {
      ok = parse_bool(value, &spec.kernel_migration);
    } else if (key == "upm") {
      spec.upm = value;
      ok = value == "off" || value == "dist" || value == "recrep";
    } else if (key == "iterations") {
      ok = parse_u32(value, &spec.iterations);
    } else if (key == "compute_scale") {
      ok = parse_u32(value, &spec.compute_scale) && spec.compute_scale >= 1;
    } else if (key == "size_scale") {
      ok = parse_f64(value, &spec.size_scale) && spec.size_scale > 0.0;
    } else if (key == "seed") {
      ok = parse_u64(value, &spec.seed);
    } else if (key == "fault_rate") {
      ok = parse_f64(value, &spec.fault_rate) && spec.fault_rate >= 0.0 &&
           spec.fault_rate <= 1.0;
    } else if (key == "fault_seed") {
      ok = parse_u64(value, &spec.fault_seed);
    } else {
      *error = "unknown cell spec key '" + key + "'";
      return false;
    }
    if (!ok) {
      *error = "bad value for cell spec key '" + key + "': '" + value + "'";
      return false;
    }
  }
  if (!saw_benchmark) {
    *error = "cell spec has no benchmark= field";
    return false;
  }
  *out = spec;
  return true;
}

harness::RunConfig CellSpec::to_config() const {
  harness::RunConfig config;
  config.benchmark = benchmark;
  config.placement = placement;
  config.kernel_migration = kernel_migration;
  if (upm == "off") {
    config.upm_mode = nas::UpmMode::kOff;
  } else if (upm == "dist") {
    config.upm_mode = nas::UpmMode::kDistribution;
  } else if (upm == "recrep") {
    config.upm_mode = nas::UpmMode::kRecordReplay;
  } else {
    REPRO_REQUIRE_MSG(false, "CellSpec.upm must be off|dist|recrep");
  }
  config.iterations = iterations;
  config.compute_scale = compute_scale;
  config.workload.size_scale = size_scale;
  config.seed = seed;
  if (fault_rate > 0.0) {
    config.fault.set_rate(fault_rate);
    if (fault_seed != 0) {
      config.fault.seed = fault_seed;
    }
  }
  // The digest is the service's correctness currency: every cell is
  // traced so cached results can be proven byte-identical to a
  // recomputation.
  config.trace = true;
  return config;
}

std::uint64_t CellSpec::identity() const {
  return harness::config_identity(to_config());
}

std::string SweepRequest::encode() const {
  std::string text;
  for (const CellSpec& cell : cells) {
    text += cell.format();
    text += '\n';
  }
  return text;
}

bool SweepRequest::decode(const std::string& text, SweepRequest* out,
                          std::string* error) {
  SweepRequest request;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    CellSpec spec;
    if (!CellSpec::parse(line, &spec, error)) {
      return false;
    }
    request.cells.push_back(std::move(spec));
  }
  if (request.cells.empty()) {
    *error = "sweep request contains no cells";
    return false;
  }
  *out = std::move(request);
  return true;
}

}  // namespace repro::service
