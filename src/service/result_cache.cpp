#include "repro/service/result_cache.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "repro/common/assert.hpp"
#include "repro/common/log.hpp"
#include "repro/harness/atomic_file.hpp"
#include "repro/service/protocol.hpp"

namespace repro::service {

namespace {

constexpr const char* kJournalFile = "journal.log";
constexpr const char* kSnapshotFile = "snapshot.txt";

std::string hex16(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

/// One parsed journal entry, or why parsing stopped.
struct EntryScan {
  bool ok = false;
  std::uint64_t identity = 0;
  std::string payload;
  std::size_t consumed = 0;
};

/// Parses one RCJE entry at `text[pos..]`. Anything short, malformed
/// or digest-mismatched returns ok=false: the caller treats it as the
/// torn tail and stops.
EntryScan scan_entry(const std::string& text, std::size_t pos) {
  EntryScan scan;
  const std::size_t eol = text.find('\n', pos);
  if (eol == std::string::npos) {
    return scan;
  }
  std::istringstream header(text.substr(pos, eol - pos));
  std::string tag;
  std::uint64_t identity = 0;
  std::size_t bytes = 0;
  std::string digest_hex;
  if (!(header >> tag >> identity >> bytes >> digest_hex) || tag != "RCJE") {
    return scan;
  }
  const std::size_t payload_at = eol + 1;
  // +1 for the trailing '\n' that closes the payload.
  if (payload_at + bytes + 1 > text.size()) {
    return scan;
  }
  if (text[payload_at + bytes] != '\n') {
    return scan;
  }
  const std::string payload = text.substr(payload_at, bytes);
  if (hex16(frame_digest(payload)) != digest_hex) {
    return scan;
  }
  scan.ok = true;
  scan.identity = identity;
  scan.payload = payload;
  scan.consumed = payload_at + bytes + 1 - pos;
  return scan;
}

std::string read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {};
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

std::string encode_journal_entry(std::uint64_t identity,
                                 const std::string& payload) {
  std::ostringstream os;
  os << "RCJE " << identity << ' ' << payload.size() << ' '
     << hex16(frame_digest(payload)) << '\n'
     << payload << '\n';
  return os.str();
}

ResultCache::ResultCache(CacheConfig config) : config_(std::move(config)) {
  REPRO_REQUIRE_MSG(config_.capacity >= 1, "result cache capacity must be >= 1");
  if (!config_.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.dir, ec);
    REPRO_REQUIRE_MSG(!ec, "cannot create result cache directory");
    recover();
    open_journal();
  }
}

ResultCache::~ResultCache() {
  if (journal_fd_ >= 0) {
    ::close(journal_fd_);
  }
}

std::string ResultCache::journal_path() const {
  return config_.dir + "/" + kJournalFile;
}

std::string ResultCache::snapshot_path() const {
  return config_.dir + "/" + kSnapshotFile;
}

void ResultCache::recover() {
  // Snapshot first (atomic_write_file guarantees it is whole, but the
  // per-entry digests are still verified -- cheap insurance against
  // editors and cosmic rays)...
  const std::string snapshot = read_whole_file(snapshot_path());
  std::size_t pos = 0;
  if (!snapshot.empty()) {
    const std::size_t eol = snapshot.find('\n');
    std::istringstream header(snapshot.substr(0, eol));
    std::string tag;
    std::string version;
    std::size_t count = 0;
    if (eol != std::string::npos && (header >> tag >> version >> count) &&
        tag == "RCSS" && version == "v1") {
      pos = eol + 1;
      for (std::size_t i = 0; i < count; ++i) {
        const EntryScan scan = scan_entry(snapshot, pos);
        if (!scan.ok) {
          REPRO_LOG_WARN("result cache: snapshot entry ", i,
                         " unreadable; keeping the ", entries_.size(),
                         " entries before it");
          break;
        }
        if (insert_in_memory(scan.identity, scan.payload)) {
          ++stats_.recovered_entries;
        }
        pos += scan.consumed;
      }
    } else {
      REPRO_LOG_WARN("result cache: unrecognized snapshot header; starting "
                     "from the journal alone");
    }
  }
  // ...then replay the journal over it, stopping at the torn tail.
  const std::string journal = read_whole_file(journal_path());
  pos = 0;
  while (pos < journal.size()) {
    const EntryScan scan = scan_entry(journal, pos);
    if (!scan.ok) {
      stats_.dropped_torn_bytes = journal.size() - pos;
      REPRO_LOG_WARN("result cache: dropping ", stats_.dropped_torn_bytes,
                     " bytes of torn journal tail");
      break;
    }
    // Replay over a snapshot is idempotent: same identity implies the
    // byte-identical payload.
    if (insert_in_memory(scan.identity, scan.payload)) {
      ++stats_.recovered_entries;
    }
    pos += scan.consumed;
  }
}

bool ResultCache::insert_in_memory(std::uint64_t identity,
                                   std::string payload) {
  const auto it = index_.find(identity);
  if (it != index_.end()) {
    REPRO_REQUIRE_MSG(it->second->second == payload,
                      "result cache: two different payloads for one config "
                      "identity -- the deterministic simulator contradicted "
                      "itself");
    entries_.splice(entries_.begin(), entries_, it->second);
    return false;
  }
  entries_.emplace_front(identity, std::move(payload));
  index_[identity] = entries_.begin();
  while (entries_.size() > config_.capacity) {
    index_.erase(entries_.back().first);
    entries_.pop_back();
    ++stats_.evictions;
  }
  return true;
}

void ResultCache::open_journal() {
  journal_fd_ = ::open(journal_path().c_str(),
                       O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  REPRO_REQUIRE_MSG(journal_fd_ >= 0, "cannot open result cache journal");
}

std::optional<std::string> ResultCache::lookup(std::uint64_t identity) {
  const auto it = index_.find(identity);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  entries_.splice(entries_.begin(), entries_, it->second);
  return it->second->second;
}

void ResultCache::insert(std::uint64_t identity, const std::string& payload) {
  if (journal_fd_ >= 0) {
    append_journal(identity, payload);
  }
  if (insert_in_memory(identity, payload)) {
    ++stats_.insertions;
  }
  if (journal_fd_ >= 0 && config_.snapshot_every != 0 &&
      ++appends_since_snapshot_ >= config_.snapshot_every) {
    write_snapshot();
  }
}

void ResultCache::append_journal(std::uint64_t identity,
                                 const std::string& payload) {
  const std::string entry = encode_journal_entry(identity, payload);
  std::size_t off = 0;
  while (off < entry.size()) {
    const ssize_t n =
        ::write(journal_fd_, entry.data() + off, entry.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      REPRO_REQUIRE_MSG(false, "result cache journal write failed");
    }
    off += static_cast<std::size_t>(n);
  }
  // The fsync is the acknowledgement: once insert() returns, recovery
  // is obliged to find this entry.
  REPRO_REQUIRE_MSG(::fsync(journal_fd_) == 0,
                    "result cache journal fsync failed");
}

void ResultCache::write_snapshot() {
  std::ostringstream os;
  os << "RCSS v1 " << entries_.size() << '\n';
  // Oldest first, so recovery's insert order reproduces the recency
  // order (MRU re-inserted last ends up at the front).
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    os << encode_journal_entry(it->first, it->second);
  }
  harness::atomic_write_file(snapshot_path(), os.str());
  ++stats_.snapshots;
  appends_since_snapshot_ = 0;
  // Truncate the journal only after the snapshot is durably in place;
  // a crash in between replays the journal over the snapshot, which is
  // idempotent.
  ::close(journal_fd_);
  journal_fd_ = -1;
  harness::atomic_write_file(journal_path(), "");
  open_journal();
}

void ResultCache::flush_snapshot() {
  if (journal_fd_ >= 0) {
    write_snapshot();
  }
}

}  // namespace repro::service
