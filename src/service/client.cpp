#include "repro/service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstring>
#include <thread>

#include "repro/harness/checkpoint.hpp"
#include "repro/service/protocol.hpp"

namespace repro::service {

namespace {

/// RAII connection to the daemon socket; fd < 0 when connect failed.
/// Retries ENOENT / ECONNREFUSED for up to `wait_ms`, so a client
/// started in lockstep with the daemon (bench harness, CI smoke) rides
/// out the bind+listen window instead of failing fast.
class Connection {
 public:
  Connection(const std::string& path, std::uint32_t wait_ms) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      return;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(wait_ms);
    while (true) {
      fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
      if (fd_ < 0) {
        return;
      }
      if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        return;
      }
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      const bool daemon_not_up_yet = err == ENOENT || err == ECONNREFUSED;
      if (!daemon_not_up_yet || std::chrono::steady_clock::now() >= deadline) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ~Connection() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;
  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

/// Parses "key=<number>\n" at the start of a reply payload; advances
/// *pos past the line.
bool parse_u64_line(const std::string& payload, std::size_t* pos,
                    std::string_view key, std::uint64_t* out) {
  const std::size_t eol = payload.find('\n', *pos);
  if (eol == std::string::npos) {
    return false;
  }
  const std::string_view line(payload.data() + *pos, eol - *pos);
  if (line.size() <= key.size() + 1 ||
      line.compare(0, key.size(), key) != 0 || line[key.size()] != '=') {
    return false;
  }
  const char* begin = line.data() + key.size() + 1;
  const char* end = line.data() + line.size();
  const auto [p, ec] = std::from_chars(begin, end, *out);
  if (ec != std::errc{} || p != end) {
    return false;
  }
  *pos = eol + 1;
  return true;
}

harness::FailureClass parse_failure_class(const std::string& name) {
  using harness::FailureClass;
  if (name == "timeout") {
    return FailureClass::kTimeout;
  }
  if (name == "retry-exhausted") {
    return FailureClass::kRetryExhausted;
  }
  if (name == "crash") {
    return FailureClass::kCrash;
  }
  return FailureClass::kFault;
}

}  // namespace

bool SweepReply::ok() const {
  if (busy || !error.empty()) {
    return false;
  }
  for (const CellOutcome& cell : cells) {
    if (!cell.ok) {
      return false;
    }
  }
  return true;
}

int SweepReply::exit_code() const {
  if (busy || !error.empty()) {
    return 2;
  }
  bool any_failed = false;
  harness::FailureClass worst = harness::FailureClass::kFault;
  for (const CellOutcome& cell : cells) {
    if (cell.ok) {
      continue;
    }
    any_failed = true;
    if (static_cast<int>(cell.cls) > static_cast<int>(worst)) {
      worst = cell.cls;
    }
  }
  return any_failed ? harness::failure_exit_code(worst) : 0;
}

SweepClient::SweepClient(std::string socket_path,
                         std::uint32_t connect_wait_ms)
    : socket_path_(std::move(socket_path)),
      connect_wait_ms_(connect_wait_ms) {}

SweepReply SweepClient::submit(const SweepRequest& request) {
  SweepReply reply;
  reply.cells.resize(request.cells.size());
  Connection conn(socket_path_, connect_wait_ms_);
  if (conn.fd() < 0) {
    reply.error = "cannot connect to sweep daemon at " + socket_path_;
    return reply;
  }
  try {
    write_frame(conn.fd(), FrameType::kSweepRequest, request.encode());
    while (true) {
      Frame frame;
      if (read_frame(conn.fd(), &frame) == ReadResult::kEof) {
        reply.error = "daemon closed the connection before kSweepDone";
        return reply;
      }
      switch (frame.type) {
        case FrameType::kBusy:
          reply.busy = true;
          return reply;
        case FrameType::kError:
          reply.error = frame.payload.empty() ? "daemon reported an error"
                                              : frame.payload;
          return reply;
        case FrameType::kSweepDone:
          return reply;
        case FrameType::kCellResult: {
          std::size_t pos = 0;
          std::uint64_t index = 0;
          std::uint64_t cached = 0;
          if (!parse_u64_line(frame.payload, &pos, "index", &index) ||
              !parse_u64_line(frame.payload, &pos, "cached", &cached) ||
              index >= reply.cells.size()) {
            reply.error = "malformed kCellResult payload";
            return reply;
          }
          CellOutcome& cell = reply.cells[index];
          const std::string body = frame.payload.substr(pos);
          const std::uint64_t identity = request.cells[index].identity();
          if (!harness::decode_result(body, identity, &cell.result)) {
            reply.error = "kCellResult payload failed its identity fence";
            return reply;
          }
          cell.answered = true;
          cell.ok = true;
          cell.cached = cached != 0;
          if (cell.cached) {
            ++reply.cache_hits;
          }
          break;
        }
        case FrameType::kCellFailed: {
          std::size_t pos = 0;
          std::uint64_t index = 0;
          if (!parse_u64_line(frame.payload, &pos, "index", &index) ||
              index >= reply.cells.size()) {
            reply.error = "malformed kCellFailed payload";
            return reply;
          }
          CellOutcome& cell = reply.cells[index];
          cell.answered = true;
          cell.ok = false;
          // "class=<name>\nmessage=<rest of payload>"
          const std::size_t class_eol = frame.payload.find('\n', pos);
          if (class_eol != std::string::npos &&
              frame.payload.compare(pos, 6, "class=") == 0) {
            cell.cls = parse_failure_class(
                frame.payload.substr(pos + 6, class_eol - pos - 6));
            pos = class_eol + 1;
          }
          if (frame.payload.compare(pos, 8, "message=") == 0) {
            cell.message = frame.payload.substr(pos + 8);
          } else {
            cell.message = frame.payload.substr(pos);
          }
          break;
        }
        default:
          reply.error = "unexpected frame type from daemon";
          return reply;
      }
    }
  } catch (const ProtocolError& e) {
    reply.error = e.what();
    return reply;
  }
}

bool SweepClient::shutdown_daemon() {
  Connection conn(socket_path_, connect_wait_ms_);
  if (conn.fd() < 0) {
    return false;
  }
  try {
    write_frame(conn.fd(), FrameType::kShutdown, "");
  } catch (const ProtocolError&) {
    return false;
  }
  return true;
}

}  // namespace repro::service
