#include "repro/service/worker.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <charconv>
#include <cstdlib>
#include <string>

#include "repro/common/assert.hpp"
#include "repro/harness/checkpoint.hpp"
#include "repro/harness/run.hpp"
#include "repro/service/cellspec.hpp"
#include "repro/service/protocol.hpp"

namespace repro::service {

namespace {

/// Exit status of a worker the abort fault fired in (distinguishable
/// from a real crash only in the logs; the daemon treats both as
/// kCrash, which is the point of the chaos suite).
constexpr int kAbortExitStatus = 17;

/// Splits a kCellTask payload into the attempt counter and the spec
/// line. Returns false on anything malformed.
bool parse_task(const std::string& payload, std::uint32_t* attempt,
                std::string* spec_line) {
  constexpr std::string_view kPrefix = "attempt=";
  if (payload.compare(0, kPrefix.size(), kPrefix) != 0) {
    return false;
  }
  const std::size_t eol = payload.find('\n');
  if (eol == std::string::npos) {
    return false;
  }
  const char* begin = payload.data() + kPrefix.size();
  const char* end = payload.data() + eol;
  const auto [p, ec] = std::from_chars(begin, end, *attempt);
  if (ec != std::errc{} || p != end) {
    return false;
  }
  *spec_line = payload.substr(eol + 1);
  while (!spec_line->empty() && spec_line->back() == '\n') {
    spec_line->pop_back();
  }
  return true;
}

void serve_task(int fd, const std::string& payload,
                const fault::ServiceFaultPlan& faults) {
  std::uint32_t attempt = 0;
  std::string spec_line;
  std::string error;
  CellSpec spec;
  if (!parse_task(payload, &attempt, &spec_line) ||
      !CellSpec::parse(spec_line, &spec, &error)) {
    write_frame(fd, FrameType::kCellError,
                "class=fault\nmessage=worker cannot parse cell task: " +
                    (error.empty() ? payload : error));
    return;
  }
  const std::uint64_t identity = spec.identity();
  // One consultation per (cell, attempt), in class order; at most one
  // class fires. The draw is a pure function of (seed, class,
  // identity, attempt), so the chaos tests can predict every fault.
  if (service_fault_fires(faults, fault::ServiceFaultClass::kWorkerAbort,
                          identity, attempt)) {
    _exit(kAbortExitStatus);
  }
  if (service_fault_fires(faults, fault::ServiceFaultClass::kWorkerHang,
                          identity, attempt)) {
    // Hang, don't exit: only the daemon's deadline SIGKILL reclaims
    // this slot. pause() returns on any handled signal; loop so a
    // stray SIGCHLD in the child cannot un-hang it.
    while (true) {
      ::pause();
    }
  }
  const bool garble = service_fault_fires(
      faults, fault::ServiceFaultClass::kGarbledFrame, identity, attempt);
  const bool torn =
      !garble && service_fault_fires(faults, fault::ServiceFaultClass::kTornFrame,
                                     identity, attempt);
  try {
    const harness::RunResult result = harness::run_benchmark(spec.to_config());
    const std::string reply = harness::encode_result(identity, result);
    if (garble) {
      write_garbled_frame(fd, FrameType::kCellReply, reply);
    } else if (torn) {
      // Die mid-write: leave the daemon holding a frame prefix that can
      // never complete, then wedge until the deadline SIGKILL.
      write_torn_frame_prefix(fd, FrameType::kCellReply, reply);
      while (true) {
        ::pause();
      }
    } else {
      write_frame(fd, FrameType::kCellReply, reply);
    }
  } catch (const std::exception& e) {
    // Deterministic simulation: this cell fails the same way every
    // time, so the daemon must type it, not re-dispatch it.
    write_frame(fd, FrameType::kCellError,
                std::string("class=fault\nmessage=") + e.what());
  }
}

}  // namespace

void worker_loop(int fd, const fault::ServiceFaultPlan& faults) {
  while (true) {
    Frame frame;
    try {
      if (read_frame(fd, &frame) == ReadResult::kEof) {
        return;
      }
    } catch (const ProtocolError&) {
      // Torn/garbled task stream: the daemon side is gone or insane
      // either way.
      return;
    }
    if (frame.type == FrameType::kShutdown) {
      return;
    }
    if (frame.type != FrameType::kCellTask) {
      continue;
    }
    serve_task(fd, frame.payload, faults);
  }
}

WorkerHandle spawn_worker(const fault::ServiceFaultPlan& faults,
                          const std::function<void()>& in_child) {
  int fds[2];
  REPRO_REQUIRE_MSG(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
                    "socketpair for worker failed");
  // The fork inherits the daemon's SIGTERM/SIGINT handler, which
  // write()s to a wake pipe the child is about to close; a signal to
  // the process group would then hit a closed fd -- or a reused one,
  // corrupting whatever the worker opened there. Block both signals
  // across the fork so the child can restore the default disposition
  // before either can be delivered; anything sent in the window stays
  // pending and then takes the default action.
  sigset_t block;
  sigset_t saved;
  ::sigemptyset(&block);
  ::sigaddset(&block, SIGTERM);
  ::sigaddset(&block, SIGINT);
  ::sigprocmask(SIG_BLOCK, &block, &saved);
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::sigprocmask(SIG_SETMASK, &saved, nullptr);
    ::close(fds[0]);
    ::close(fds[1]);
    REPRO_REQUIRE_MSG(false, "fork for worker failed");
  }
  if (pid == 0) {
    // Child. Restore default signal dispositions, then close the
    // parent's end and whatever else the daemon says we inherited,
    // serve, and _exit -- never unwind into the parent's stack (this
    // process may have been forked from a gtest binary).
    struct sigaction dfl{};
    dfl.sa_handler = SIG_DFL;
    ::sigemptyset(&dfl.sa_mask);
    ::sigaction(SIGTERM, &dfl, nullptr);
    ::sigaction(SIGINT, &dfl, nullptr);
    ::sigprocmask(SIG_SETMASK, &saved, nullptr);
    ::close(fds[0]);
    if (in_child) {
      in_child();
    }
    worker_loop(fds[1], faults);
    _exit(0);
  }
  ::sigprocmask(SIG_SETMASK, &saved, nullptr);
  ::close(fds[1]);
  WorkerHandle handle;
  handle.pid = pid;
  handle.fd = fds[0];
  return handle;
}

}  // namespace repro::service
