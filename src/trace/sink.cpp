#include "repro/trace/sink.hpp"

#include <algorithm>

#include "repro/common/assert.hpp"

namespace repro::trace {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kRegionBegin:
      return "region_begin";
    case EventKind::kRegionEnd:
      return "region_end";
    case EventKind::kBarrierWait:
      return "barrier_wait";
    case EventKind::kPageMigration:
      return "page_migration";
    case EventKind::kPageReplication:
      return "page_replication";
    case EventKind::kReplicaCollapse:
      return "replica_collapse";
    case EventKind::kPageFreeze:
      return "page_freeze";
    case EventKind::kUpmCall:
      return "upm_call";
    case EventKind::kDaemonScan:
      return "daemon_scan";
    case EventKind::kQueueSample:
      return "queue_sample";
    case EventKind::kIterationBegin:
      return "iteration_begin";
    case EventKind::kIterationEnd:
      return "iteration_end";
    case EventKind::kFaultInjection:
      return "fault_injection";
    case EventKind::kTaskSpawn:
      return "task_spawn";
    case EventKind::kTaskSteal:
      return "task_steal";
    case EventKind::kLineFill:
      return "line_fill";
    case EventKind::kLineInvalidate:
      return "line_invalidate";
    case EventKind::kLineUpgrade:
      return "line_upgrade";
    case EventKind::kLineWriteback:
      return "line_writeback";
  }
  return "?";
}

TraceSink::TraceSink() : phases_(1, std::string{}) {}

std::uint16_t TraceSink::register_lane(std::string name) {
  REPRO_REQUIRE_MSG(lanes_.size() < UINT16_MAX, "too many trace lanes");
  lanes_.push_back(Lane{std::move(name), {}});
  return static_cast<std::uint16_t>(lanes_.size() - 1);
}

const std::string& TraceSink::lane_name(std::uint16_t lane) const {
  REPRO_REQUIRE(lane < lanes_.size());
  return lanes_[lane].name;
}

std::uint32_t TraceSink::intern_phase(const std::string& name) {
  // Linear scan: the phase table holds one entry per distinct region
  // name (a handful per benchmark) and interning happens once per
  // region run, far off the simulation hot path.
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i] == name) {
      return static_cast<std::uint32_t>(i);
    }
  }
  phases_.push_back(name);
  return static_cast<std::uint32_t>(phases_.size() - 1);
}

const std::string& TraceSink::phase_name(std::uint32_t phase) const {
  REPRO_REQUIRE(phase < phases_.size());
  return phases_[phase];
}

void TraceSink::emit(std::uint16_t lane, TraceEvent event) {
  REPRO_REQUIRE(lane < lanes_.size());
  Lane& l = lanes_[lane];
  event.lane = lane;
  event.seq = static_cast<std::uint32_t>(l.events.size());
  event.iteration = iteration_;
  event.phase = phase_;
  l.events.push_back(event);
}

void TraceSink::append_replayed(std::uint16_t lane, TraceEvent event) {
  REPRO_REQUIRE(lane < lanes_.size());
  Lane& l = lanes_[lane];
  event.lane = lane;
  event.seq = static_cast<std::uint32_t>(l.events.size());
  l.events.push_back(event);
}

std::size_t TraceSink::size() const {
  std::size_t total = 0;
  for (const Lane& l : lanes_) {
    total += l.events.size();
  }
  return total;
}

const std::vector<TraceEvent>& TraceSink::lane_events(
    std::uint16_t lane) const {
  REPRO_REQUIRE(lane < lanes_.size());
  return lanes_[lane].events;
}

std::vector<TraceEvent> TraceSink::canonical_events() const {
  std::vector<TraceEvent> all;
  all.reserve(size());
  for (const Lane& l : lanes_) {
    all.insert(all.end(), l.events.begin(), l.events.end());
  }
  // The canonical total order. (lane, seq) breaks simulated-time ties
  // deterministically: lane ids come from the fixed registration order
  // of the machine assembly and seq is the per-lane append index, so
  // the result never depends on host scheduling or the --jobs count.
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              if (x.time != y.time) {
                return x.time < y.time;
              }
              if (x.lane != y.lane) {
                return x.lane < y.lane;
              }
              return x.seq < y.seq;
            });
  return all;
}

void TraceSink::clear() {
  for (Lane& l : lanes_) {
    l.events.clear();
  }
}

}  // namespace repro::trace
