// Trace exporters.
//
// Two formats:
//  * the canonical dump -- a sorted plain-text rendering of the whole
//    trace (lane table, phase table, one line per event in canonical
//    order) whose bytes are identical across runs and job counts for a
//    deterministic simulation. Its FNV-1a digest is the regression
//    oracle the golden-trace suite checks in;
//  * Chrome trace-event JSON, loadable in chrome://tracing or Perfetto
//    for human inspection of the migration timeline.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "repro/trace/sink.hpp"

namespace repro::trace {

/// Renders the canonical dump: header, lane table, phase table, then
/// every event in canonical (time, lane, seq) order, all-integer
/// fields, one line each.
void write_canonical(std::ostream& os, const TraceSink& sink);
[[nodiscard]] std::string canonical_dump(const TraceSink& sink);

/// 64-bit FNV-1a over a byte string.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// Digest of the canonical dump as a 16-hex-digit string; the value
/// stored by the golden-trace regression suite.
[[nodiscard]] std::string digest(const TraceSink& sink);

/// Writes the trace in Chrome trace-event JSON ("traceEvents" array):
/// regions as B/E duration events on the team track, barrier waits as
/// per-thread complete events, queue occupancy as counter tracks, and
/// everything else as instant events with argument payloads.
void write_chrome_trace(std::ostream& os, const TraceSink& sink);

}  // namespace repro::trace
