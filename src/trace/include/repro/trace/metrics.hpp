// MetricsRegistry: per-iteration counters derived from a trace.
//
// The trace is the single source of truth; the registry replays the
// canonical event stream and buckets it by outer iteration, producing
// the numbers the paper's tables are made of (migrations per
// invocation, remote-access ratio, queue-pressure percentiles,
// barrier time) without any second accounting path in the simulator.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "repro/common/units.hpp"
#include "repro/trace/sink.hpp"

namespace repro::trace {

struct IterationMetrics {
  /// Outer iteration (0 = setup + cold start, 1.. = timed).
  std::uint32_t iteration = 0;
  /// Kernel-level page migrations, however requested.
  std::uint64_t migrations = 0;
  /// Migrations performed by UPMlib calls (migrate_memory + replay +
  /// undo; from kUpmCall payloads).
  std::uint64_t upm_migrations = 0;
  /// Migrations performed by the kernel daemon (kDaemonScan decisions).
  std::uint64_t daemon_migrations = 0;
  std::uint64_t replications = 0;
  std::uint64_t freezes = 0;
  Ns migration_cost = 0;
  /// Total join-barrier wait across all threads and regions.
  Ns barrier_wait = 0;
  /// Miss lines from kIterationEnd (0 for iteration 0: the harness
  /// resets memory statistics after cold start).
  std::uint64_t remote_miss_lines = 0;
  std::uint64_t local_miss_lines = 0;
  /// 95th percentile (nearest-rank) of the node-queue backlog samples
  /// taken at region joins within the iteration.
  Ns queue_backlog_p95 = 0;
  /// Faults injected (kFaultInjection events, all classes).
  std::uint64_t faults_injected = 0;
  /// Line-grain coherence counters (all zero unless the run had the
  /// coherence model attached; see repro::coherence).
  std::uint64_t line_fills = 0;         ///< kLineFill payload a
  std::uint64_t coherence_misses = 0;   ///< coherence-classified fills
  std::uint64_t line_invalidations = 0; ///< copies killed (kLineInvalidate b)
  std::uint64_t line_upgrades = 0;      ///< S->M upgrades
  std::uint64_t line_writebacks = 0;    ///< dirty evictions

  /// Fraction of miss lines served remotely; 0 when no misses.
  [[nodiscard]] double remote_ratio() const;
};

class MetricsRegistry {
 public:
  /// Derives metrics from the sink's canonical event stream.
  explicit MetricsRegistry(const TraceSink& sink);

  /// Per-iteration rows, ascending by iteration; only iterations that
  /// produced at least one event appear.
  [[nodiscard]] const std::vector<IterationMetrics>& per_iteration() const {
    return rows_;
  }

  /// Sums across all iterations (queue_backlog_p95 is recomputed over
  /// every sample, not averaged).
  [[nodiscard]] IterationMetrics totals() const { return totals_; }

  /// Migration counts of the timed iterations (iteration >= 1), in
  /// iteration order -- the shape Table 2's "migrations in the first
  /// iteration" argument is about.
  [[nodiscard]] std::vector<std::uint64_t> migrations_per_timed_iteration()
      const;

 private:
  std::vector<IterationMetrics> rows_;
  IterationMetrics totals_;
};

/// Nearest-rank p95 of a sample set (0 for an empty set). Exposed for
/// tests; `samples` is consumed (sorted in place).
[[nodiscard]] Ns percentile95(std::vector<Ns> samples);

}  // namespace repro::trace
