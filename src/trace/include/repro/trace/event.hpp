// Typed simulation trace events.
//
// The paper's central claim is a *timeline* claim -- UPMlib performs
// almost all of its migrations in the first outer iteration (Table 2)
// so later iterations run at near-first-touch speed -- and end-of-run
// aggregates cannot show it. Every interesting state change in the
// simulated stack (page migration / replication / freeze, record-replay
// protocol steps, parallel-region fork/join and barrier waits, memory
// queue occupancy, kernel-daemon scan decisions) is recorded as one
// fixed-shape event stamped with simulated time, iteration, phase and
// node, so both humans (chrome://tracing) and tests (golden digests)
// can inspect *when* the dynamics happened.
//
// All payload fields are integers: the canonical dump and its digest
// must be byte-stable across runs, job counts and compilers, so no
// floating-point value is ever serialized.
#pragma once

#include <cstdint>

#include "repro/common/units.hpp"

namespace repro::trace {

enum class EventKind : std::uint8_t {
  /// Parallel region fork (omp). `phase` is the region name.
  kRegionBegin = 0,
  /// Parallel region join barrier completed (omp).
  kRegionEnd,
  /// One thread's wait at a region's join barrier (omp/sim).
  /// node = thread id, a = wait in ns, time = the region's end.
  kBarrierWait,
  /// A page moved between nodes (os kernel; requested by UPMlib, the
  /// kernel daemon, or a test). page, src -> dst, cost.
  /// a = 1 when the kernel redirected the request to another node.
  kPageMigration,
  /// A read-only replica was created (os kernel). page, src = home,
  /// dst = replica node, cost.
  kPageReplication,
  /// All replicas of a page were destroyed on write/migrate (os
  /// kernel). page, a = replicas collapsed, cost.
  kReplicaCollapse,
  /// A page was frozen against further migration (upmlib ping-pong
  /// control or daemon bounce control). page, node = current home.
  kPageFreeze,
  /// One UPMlib public entry point ran (upmlib). a = UpmCall kind
  /// index (see upm::upm_call_name), b = migrations performed by the
  /// call (migrate_memory / replay / undo), cost = time charged to the
  /// master thread. record/replay/undo calls are the phase-transition
  /// points of the record--replay protocol.
  kUpmCall,
  /// The kernel daemon's comparator interrupt fired and the handler
  /// made a decision (os). page, node = accessor node, src = home,
  /// a = decision (see DaemonDecision), cost = handler cost if it
  /// migrated.
  kDaemonScan,
  /// Per-node memory-queue occupancy sample taken at a region join
  /// (memsys). node, a = backlog in ns (0 when idle), b = cumulative
  /// lines served.
  kQueueSample,
  /// Outer-iteration boundary markers (harness). iteration is the
  /// 1-based timed iteration; iteration 0 is setup / cold start.
  kIterationBegin,
  /// a = remote miss lines in this iteration, b = local miss lines.
  kIterationEnd,
  /// One injected fault fired (repro::fault). a = FaultClass, with
  /// class-specific payloads: counter corruption -- page,
  /// b = scale percent; busy migration -- page, b = 1 when an existing
  /// pin rejected (0 = fresh fault); node slowdown -- node, b = spike
  /// lines, cost = extra ns; preemption -- node = b = victim thread,
  /// cost = stretch ns.
  kFaultInjection,
  /// One explicit task was spawned into the task scheduler (omp).
  /// node = home thread, a = task index in spawn order, b = the
  /// spawner's duration estimate in ns.
  kTaskSpawn,
  /// A task was stolen from another thread's deque (omp). node = dst =
  /// thief thread, src = victim thread, a = task index in spawn order,
  /// b = the thief's steal counter (its steal-order position).
  kTaskSteal,
  /// Line fills performed by one access under the line-grain coherence
  /// model (repro::coherence). node = accessing processor, page,
  /// a = total lines filled, b = packed miss classification:
  /// cold | capacity << 16 | coherence << 32 | dirty-interventions << 48
  /// (each a 16-bit count).
  kLineFill,
  /// A write invalidated the remote cached copies of one line (upgrade
  /// or write miss). node = writing processor, page, a = line index
  /// within the page, b = invalidated copy count. The per-line stream
  /// of these events is the false-sharing ping-pong ground truth.
  kLineInvalidate,
  /// Read-for-share upgrades performed by one access: S->M directory
  /// round trips under MSI/MESI (MESI's silent E->M is not counted).
  /// node = writing processor, page, a = upgraded line count.
  kLineUpgrade,
  /// Dirty lines evicted by one access's fills, posted to their home
  /// memory modules. node = evicting processor, page = the *accessed*
  /// page, a = writeback line count.
  kLineWriteback,
};

/// Number of event kinds (array sizing / validation).
inline constexpr std::size_t kNumEventKinds =
    static_cast<std::size_t>(EventKind::kLineWriteback) + 1;

/// kDaemonScan decision codes (the `a` payload).
enum class DaemonDecision : std::uint8_t {
  kMigrated = 0,
  kSuppressedFrozen = 1,
  kSuppressedCooloff = 2,
  kSuppressedGlobal = 3,
  kRejected = 4,      ///< kernel had no frame for the move
  kDeferredBusy = 5,  ///< page transiently pinned; retry next interrupt
};

/// Stable lowercase identifier used in the canonical dump
/// ("region_begin", "page_migration", ...).
[[nodiscard]] const char* event_kind_name(EventKind kind);

/// One trace event. `lane`, `seq`, `iteration` and `phase` are stamped
/// by the TraceSink at emission; emitters fill the rest. Fields not
/// meaningful for a kind stay at their defaults and are still
/// serialized (fixed shape keeps the canonical dump trivially stable).
struct TraceEvent {
  Ns time = 0;               ///< simulated time of the event
  std::uint64_t page = 0;    ///< virtual page number (page events)
  std::uint64_t a = 0;       ///< kind-specific payload (see EventKind)
  std::uint64_t b = 0;       ///< kind-specific payload (see EventKind)
  Ns cost = 0;               ///< cost charged for the action, if any
  std::int32_t node = -1;    ///< primary node / thread (see EventKind)
  std::int32_t src = -1;     ///< source node (moves)
  std::int32_t dst = -1;     ///< destination node (moves)
  EventKind kind = EventKind::kRegionBegin;
  // --- stamped by TraceSink::emit ---
  std::uint16_t lane = 0;       ///< emitting lane (deterministic id)
  std::uint32_t seq = 0;        ///< per-lane append index
  std::uint32_t iteration = 0;  ///< outer iteration (0 = setup)
  std::uint32_t phase = 0;      ///< interned region name (0 = none)
};

}  // namespace repro::trace
