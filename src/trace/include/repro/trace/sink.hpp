// TraceSink: structured event recording with canonical replay order.
//
// Zero overhead when off: nothing in the simulator holds more than a
// null TraceSink pointer, and every emission site is guarded by a
// single pointer test.
//
// Lanes. Each event source (one per simulated subsystem or thread)
// registers a *lane* -- an independent append-only buffer. Appends
// never synchronize with other lanes, so recording is lock-free per
// simulated source, and -- more importantly -- the canonical order of
// the trace is *reconstructed*, never observed: events are totally
// ordered by (time, lane, seq), where seq is the per-lane append
// index. Lane ids are assigned in registration order, which the
// machine assembly fixes deterministically, so the canonical order
// depends only on the simulation, never on host scheduling or the
// --jobs count.
//
// Context. The sink carries the current simulated time, outer
// iteration and phase (interned region name); whoever owns that
// context (harness loop, OpenMP runtime, UPMlib, daemon) updates it,
// and emit() stamps every event with it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "repro/common/units.hpp"
#include "repro/trace/event.hpp"

namespace repro::trace {

class TraceSink {
 public:
  TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // --- lanes ---------------------------------------------------------------
  /// Registers an event source; returns its deterministic lane id.
  std::uint16_t register_lane(std::string name);
  [[nodiscard]] std::size_t num_lanes() const { return lanes_.size(); }
  [[nodiscard]] const std::string& lane_name(std::uint16_t lane) const;

  // --- context -------------------------------------------------------------
  /// Current simulated time; emitters without their own clock (the
  /// kernel's migration primitive) stamp events with it.
  void set_now(Ns now) { now_ = now; }
  [[nodiscard]] Ns now() const { return now_; }

  void set_iteration(std::uint32_t iteration) { iteration_ = iteration; }
  [[nodiscard]] std::uint32_t iteration() const { return iteration_; }

  /// Interns a phase (region) name; id 0 is reserved for "no phase".
  std::uint32_t intern_phase(const std::string& name);
  void set_phase(std::uint32_t phase) { phase_ = phase; }
  [[nodiscard]] std::uint32_t phase() const { return phase_; }
  [[nodiscard]] const std::string& phase_name(std::uint32_t phase) const;
  [[nodiscard]] std::size_t num_phases() const { return phases_.size(); }

  // --- emission ------------------------------------------------------------
  /// Appends `event` to `lane`, stamping lane, seq, iteration and
  /// phase. The caller sets `time` (use now() when it has no better
  /// clock).
  void emit(std::uint16_t lane, TraceEvent event);

  /// Convenience: emit stamped at the sink's current time.
  void emit_now(std::uint16_t lane, TraceEvent event) {
    event.time = now_;
    emit(lane, std::move(event));
  }

  /// Appends a synthesized event to `lane`, assigning lane and seq but
  /// keeping the caller's time, iteration and phase stamps. Used by the
  /// harness's steady-state fast-forward to re-stamp a recorded
  /// iteration's events into later iterations without running them.
  void append_replayed(std::uint16_t lane, TraceEvent event);

  // --- access --------------------------------------------------------------
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Events of one lane in append order.
  [[nodiscard]] const std::vector<TraceEvent>& lane_events(
      std::uint16_t lane) const;

  /// All events merged into the canonical total order:
  /// ascending (time, lane, seq).
  [[nodiscard]] std::vector<TraceEvent> canonical_events() const;

  /// Drops all recorded events (lane and phase tables survive).
  void clear();

 private:
  struct Lane {
    std::string name;
    std::vector<TraceEvent> events;
  };

  std::vector<Lane> lanes_;
  std::vector<std::string> phases_;  // index = phase id; [0] = ""
  Ns now_ = 0;
  std::uint32_t iteration_ = 0;
  std::uint32_t phase_ = 0;
};

}  // namespace repro::trace
