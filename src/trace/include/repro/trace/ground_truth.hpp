// Ground-truth extraction from a recorded trace, for validating the
// static placement advisor (bench/advisor_validation): which pages
// actually migrated (and from/to where), which pages were frozen as
// ping-pongers, and the per-iteration remote/local miss mix -- all
// reconstructed from the canonical event stream, touching no new event
// kinds (the golden digests stay bit-identical).
#pragma once

#include <cstdint>
#include <vector>

#include "repro/common/units.hpp"
#include "repro/trace/sink.hpp"

namespace repro::trace {

struct MigrationRecord {
  std::uint64_t page = 0;
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::uint32_t iteration = 0;
  Ns time = 0;
  bool redirected = false;
};

struct FreezeRecord {
  std::uint64_t page = 0;
  /// Home node at the freeze (kPageFreeze's `node` payload).
  std::int32_t home = -1;
  /// True for a retry-exhaustion freeze (a == 1), false for a
  /// ping-pong bounce freeze.
  bool give_up = false;
  std::uint32_t iteration = 0;
};

/// Everything the validation sweep scores a prediction against.
struct PlacementGroundTruth {
  /// kPageMigration events in canonical order (timed iterations only;
  /// cold-start events are cleared by the harness before iteration 1).
  std::vector<MigrationRecord> migrations;
  std::vector<FreezeRecord> freezes;

  /// Distinct migrated pages, ascending; the parallel vectors give
  /// each page's home before its first migration and after its last.
  std::vector<std::uint64_t> migrated_pages;
  std::vector<std::int32_t> pre_migration_home;
  std::vector<std::int32_t> post_migration_home;

  /// Distinct bounce/give-up frozen pages, ascending.
  std::vector<std::uint64_t> frozen_pages;

  /// Migrations per timed iteration (index 0 = iteration 1), sized to
  /// the largest iteration marker seen.
  std::vector<std::uint64_t> migrations_per_iteration;

  /// Per timed iteration: wall duration and remote miss fraction
  /// (kIterationEnd's a / (a + b); 0 when the iteration missed
  /// nothing).
  std::vector<Ns> iteration_durations;
  std::vector<double> iteration_remote_fraction;

  [[nodiscard]] double last_remote_fraction() const {
    return iteration_remote_fraction.empty()
               ? 0.0
               : iteration_remote_fraction.back();
  }
};

/// Scans the sink's canonical event order once.
[[nodiscard]] PlacementGroundTruth extract_ground_truth(
    const TraceSink& sink);

/// One coherence line's invalidation history (from kLineInvalidate
/// events, which the coherence model emits once per write that killed
/// at least one remote copy).
struct LinePingPong {
  std::uint64_t page = 0;
  /// Coherence-line index within the page.
  std::uint32_t line = 0;
  /// Invalidating writes on this line.
  std::uint64_t invalidations = 0;
  /// Total remote copies those writes killed.
  std::uint64_t copies_killed = 0;
  /// Distinct invalidating writer procs, ascending.
  std::vector<std::uint32_t> writers;
};

/// What the false-sharing analyzer's predictions are scored against
/// (bench/coherence validation): the per-line invalidation traffic the
/// simulation actually produced.
struct CoherenceGroundTruth {
  /// Ascending by (page, line); only lines with at least one
  /// invalidating write appear.
  std::vector<LinePingPong> lines;
  std::uint64_t total_invalidations = 0;

  /// Lines invalidated by >= 2 distinct writers at least
  /// `min_invalidations` times: the traced ping-pong (false-sharing)
  /// set. A single-writer line invalidating readers is migratory, not
  /// false sharing.
  [[nodiscard]] std::vector<LinePingPong> ping_pong_lines(
      std::uint64_t min_invalidations = 2) const;
};

/// Scans the sink's canonical event order once (empty result when the
/// run had no coherence model attached).
[[nodiscard]] CoherenceGroundTruth extract_coherence_ground_truth(
    const TraceSink& sink);

}  // namespace repro::trace
