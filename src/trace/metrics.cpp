#include "repro/trace/metrics.hpp"

#include <algorithm>
#include <map>

namespace repro::trace {

double IterationMetrics::remote_ratio() const {
  const std::uint64_t total = remote_miss_lines + local_miss_lines;
  if (total == 0) {
    return 0.0;
  }
  return static_cast<double>(remote_miss_lines) /
         static_cast<double>(total);
}

Ns percentile95(std::vector<Ns> samples) {
  if (samples.empty()) {
    return 0;
  }
  std::sort(samples.begin(), samples.end());
  // Nearest-rank: ceil(0.95 * n), 1-based.
  const std::size_t rank = (samples.size() * 95 + 99) / 100;
  return samples[rank - 1];
}

MetricsRegistry::MetricsRegistry(const TraceSink& sink) {
  std::map<std::uint32_t, IterationMetrics> buckets;
  std::map<std::uint32_t, std::vector<Ns>> samples;
  std::vector<Ns> all_samples;

  for (const TraceEvent& e : sink.canonical_events()) {
    IterationMetrics& m = buckets[e.iteration];
    m.iteration = e.iteration;
    switch (e.kind) {
      case EventKind::kPageMigration:
        ++m.migrations;
        m.migration_cost += e.cost;
        break;
      case EventKind::kUpmCall:
        m.upm_migrations += e.b;
        break;
      case EventKind::kDaemonScan:
        if (e.a == static_cast<std::uint64_t>(DaemonDecision::kMigrated)) {
          ++m.daemon_migrations;
        }
        break;
      case EventKind::kPageReplication:
        ++m.replications;
        break;
      case EventKind::kPageFreeze:
        ++m.freezes;
        break;
      case EventKind::kBarrierWait:
        m.barrier_wait += e.a;
        break;
      case EventKind::kQueueSample:
        samples[e.iteration].push_back(e.a);
        all_samples.push_back(e.a);
        break;
      case EventKind::kIterationEnd:
        m.remote_miss_lines += e.a;
        m.local_miss_lines += e.b;
        break;
      case EventKind::kFaultInjection:
        ++m.faults_injected;
        break;
      case EventKind::kLineFill:
        m.line_fills += e.a;
        // Payload b packs the fill classification in 16-bit fields:
        // cold | capacity<<16 | coherence<<32 | dirty-fetches<<48.
        m.coherence_misses += (e.b >> 32) & 0xffffu;
        break;
      case EventKind::kLineInvalidate:
        m.line_invalidations += e.b;
        break;
      case EventKind::kLineUpgrade:
        m.line_upgrades += e.a;
        break;
      case EventKind::kLineWriteback:
        m.line_writebacks += e.a;
        break;
      default:
        break;
    }
  }

  rows_.reserve(buckets.size());
  for (auto& [iteration, m] : buckets) {
    m.queue_backlog_p95 = percentile95(std::move(samples[iteration]));
    rows_.push_back(m);

    totals_.migrations += m.migrations;
    totals_.upm_migrations += m.upm_migrations;
    totals_.daemon_migrations += m.daemon_migrations;
    totals_.replications += m.replications;
    totals_.freezes += m.freezes;
    totals_.migration_cost += m.migration_cost;
    totals_.barrier_wait += m.barrier_wait;
    totals_.remote_miss_lines += m.remote_miss_lines;
    totals_.local_miss_lines += m.local_miss_lines;
    totals_.faults_injected += m.faults_injected;
    totals_.line_fills += m.line_fills;
    totals_.coherence_misses += m.coherence_misses;
    totals_.line_invalidations += m.line_invalidations;
    totals_.line_upgrades += m.line_upgrades;
    totals_.line_writebacks += m.line_writebacks;
  }
  totals_.queue_backlog_p95 = percentile95(std::move(all_samples));
}

std::vector<std::uint64_t> MetricsRegistry::migrations_per_timed_iteration()
    const {
  std::vector<std::uint64_t> out;
  for (const IterationMetrics& m : rows_) {
    if (m.iteration >= 1) {
      out.push_back(m.migrations);
    }
  }
  return out;
}

}  // namespace repro::trace
