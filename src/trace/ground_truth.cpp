#include "repro/trace/ground_truth.hpp"

#include <algorithm>
#include <map>

namespace repro::trace {

PlacementGroundTruth extract_ground_truth(const TraceSink& sink) {
  PlacementGroundTruth truth;
  // page -> (first src, last dst), filled in canonical order so "first"
  // and "last" are well defined.
  std::map<std::uint64_t, std::pair<std::int32_t, std::int32_t>> homes;
  std::map<std::uint32_t, Ns> iteration_begin;

  for (const TraceEvent& ev : sink.canonical_events()) {
    switch (ev.kind) {
      case EventKind::kPageMigration: {
        MigrationRecord rec;
        rec.page = ev.page;
        rec.src = ev.src;
        rec.dst = ev.dst;
        rec.iteration = ev.iteration;
        rec.time = ev.time;
        rec.redirected = ev.a != 0;
        truth.migrations.push_back(rec);
        auto [it, inserted] =
            homes.try_emplace(ev.page, ev.src, ev.dst);
        if (!inserted) {
          it->second.second = ev.dst;
        }
        if (ev.iteration >= 1) {
          if (truth.migrations_per_iteration.size() < ev.iteration) {
            truth.migrations_per_iteration.resize(ev.iteration, 0);
          }
          ++truth.migrations_per_iteration[ev.iteration - 1];
        }
        break;
      }
      case EventKind::kPageFreeze: {
        FreezeRecord rec;
        rec.page = ev.page;
        rec.home = ev.node;
        rec.give_up = ev.a == 1;
        rec.iteration = ev.iteration;
        truth.freezes.push_back(rec);
        break;
      }
      case EventKind::kIterationBegin:
        if (ev.iteration >= 1) {
          iteration_begin[ev.iteration] = ev.time;
        }
        break;
      case EventKind::kIterationEnd: {
        if (ev.iteration < 1) {
          break;
        }
        if (truth.iteration_durations.size() < ev.iteration) {
          truth.iteration_durations.resize(ev.iteration, 0);
          truth.iteration_remote_fraction.resize(ev.iteration, 0.0);
        }
        const auto begin = iteration_begin.find(ev.iteration);
        if (begin != iteration_begin.end()) {
          truth.iteration_durations[ev.iteration - 1] =
              ev.time - begin->second;
        }
        const std::uint64_t total = ev.a + ev.b;
        truth.iteration_remote_fraction[ev.iteration - 1] =
            total == 0 ? 0.0
                       : static_cast<double>(ev.a) /
                             static_cast<double>(total);
        break;
      }
      default:
        break;
    }
  }

  truth.migrated_pages.reserve(homes.size());
  for (const auto& [page, src_dst] : homes) {
    truth.migrated_pages.push_back(page);
    truth.pre_migration_home.push_back(src_dst.first);
    truth.post_migration_home.push_back(src_dst.second);
  }
  for (const FreezeRecord& rec : truth.freezes) {
    truth.frozen_pages.push_back(rec.page);
  }
  std::sort(truth.frozen_pages.begin(), truth.frozen_pages.end());
  truth.frozen_pages.erase(
      std::unique(truth.frozen_pages.begin(), truth.frozen_pages.end()),
      truth.frozen_pages.end());

  const std::size_t iterations =
      std::max(truth.iteration_durations.size(),
               truth.migrations_per_iteration.size());
  truth.migrations_per_iteration.resize(iterations, 0);
  return truth;
}

std::vector<LinePingPong> CoherenceGroundTruth::ping_pong_lines(
    std::uint64_t min_invalidations) const {
  std::vector<LinePingPong> out;
  for (const LinePingPong& l : lines) {
    if (l.writers.size() >= 2 && l.invalidations >= min_invalidations) {
      out.push_back(l);
    }
  }
  return out;
}

CoherenceGroundTruth extract_coherence_ground_truth(const TraceSink& sink) {
  CoherenceGroundTruth truth;
  // (page, line) -> record; std::map gives the ascending output order.
  std::map<std::pair<std::uint64_t, std::uint32_t>, LinePingPong> by_line;
  for (const TraceEvent& ev : sink.canonical_events()) {
    if (ev.kind != EventKind::kLineInvalidate) {
      continue;
    }
    const auto line = static_cast<std::uint32_t>(ev.a);
    LinePingPong& rec = by_line[{ev.page, line}];
    rec.page = ev.page;
    rec.line = line;
    ++rec.invalidations;
    rec.copies_killed += ev.b;
    const auto writer = static_cast<std::uint32_t>(ev.node);
    if (std::find(rec.writers.begin(), rec.writers.end(), writer) ==
        rec.writers.end()) {
      rec.writers.push_back(writer);
    }
    ++truth.total_invalidations;
  }
  truth.lines.reserve(by_line.size());
  for (auto& [key, rec] : by_line) {
    std::sort(rec.writers.begin(), rec.writers.end());
    truth.lines.push_back(std::move(rec));
  }
  return truth;
}

}  // namespace repro::trace
