#include "repro/trace/export.hpp"

#include <ostream>
#include <sstream>

namespace repro::trace {

namespace {

void escape_json(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\';
    }
    os << c;
  }
}

/// Microsecond timestamp for the Chrome viewer (its native unit).
double us(Ns t) { return static_cast<double>(t) / 1e3; }

}  // namespace

void write_canonical(std::ostream& os, const TraceSink& sink) {
  os << "# repro-trace v1\n";
  for (std::uint16_t l = 0; l < sink.num_lanes(); ++l) {
    os << "lane " << l << ' ' << sink.lane_name(l) << '\n';
  }
  for (std::uint32_t p = 1; p < sink.num_phases(); ++p) {
    os << "phase " << p << ' ' << sink.phase_name(p) << '\n';
  }
  for (const TraceEvent& e : sink.canonical_events()) {
    os << e.time << ' ' << event_kind_name(e.kind) << " lane=" << e.lane
       << " seq=" << e.seq << " it=" << e.iteration << " ph=" << e.phase
       << " node=" << e.node << " src=" << e.src << " dst=" << e.dst
       << " page=" << e.page << " a=" << e.a << " b=" << e.b
       << " cost=" << e.cost << '\n';
  }
}

std::string canonical_dump(const TraceSink& sink) {
  std::ostringstream os;
  write_canonical(os, sink);
  return os.str();
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x00000100000001b3ull;
  }
  return hash;
}

std::string digest(const TraceSink& sink) {
  const std::uint64_t h = fnv1a64(canonical_dump(sink));
  std::ostringstream os;
  os << std::hex;
  os.width(16);
  os.fill('0');
  os << h;
  return os.str();
}

void write_chrome_trace(std::ostream& os, const TraceSink& sink) {
  os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";
  os.precision(17);
  bool first = true;
  const auto comma = [&] {
    if (!first) {
      os << ",\n";
    }
    first = false;
  };
  for (const TraceEvent& e : sink.canonical_events()) {
    switch (e.kind) {
      case EventKind::kRegionBegin:
      case EventKind::kRegionEnd: {
        comma();
        os << "{\"ph\": \""
           << (e.kind == EventKind::kRegionBegin ? 'B' : 'E')
           << "\", \"pid\": 0, \"tid\": 0, \"ts\": " << us(e.time)
           << ", \"name\": \"";
        escape_json(os, sink.phase_name(e.phase));
        os << "\", \"cat\": \"region\", \"args\": {\"iteration\": "
           << e.iteration << "}}";
        break;
      }
      case EventKind::kBarrierWait: {
        if (e.a == 0) {
          break;  // zero-length slices only clutter the viewer
        }
        comma();
        // tid = simulated thread + 1 keeps thread tracks below the
        // team track (tid 0).
        os << "{\"ph\": \"X\", \"pid\": 0, \"tid\": " << (e.node + 1)
           << ", \"ts\": " << us(e.time - e.a) << ", \"dur\": " << us(e.a)
           << ", \"name\": \"barrier\", \"cat\": \"barrier\", "
              "\"args\": {\"thread\": "
           << e.node << ", \"wait_ns\": " << e.a << "}}";
        break;
      }
      case EventKind::kQueueSample: {
        comma();
        os << "{\"ph\": \"C\", \"pid\": 0, \"ts\": " << us(e.time)
           << ", \"name\": \"queue_backlog_node" << e.node
           << "\", \"args\": {\"backlog_ns\": " << e.a << "}}";
        break;
      }
      default: {
        comma();
        os << "{\"ph\": \"i\", \"s\": \"g\", \"pid\": 0, \"tid\": 0, "
              "\"ts\": "
           << us(e.time) << ", \"name\": \"" << event_kind_name(e.kind)
           << "\", \"cat\": \"";
        escape_json(os, sink.lane_name(e.lane));
        os << "\", \"args\": {\"iteration\": " << e.iteration
           << ", \"page\": " << e.page << ", \"node\": " << e.node
           << ", \"src\": " << e.src << ", \"dst\": " << e.dst
           << ", \"a\": " << e.a << ", \"b\": " << e.b
           << ", \"cost_ns\": " << e.cost << "}}";
        break;
      }
    }
  }
  os << "\n]}\n";
}

}  // namespace repro::trace
