// Advisor validation sweep: the static placement advisor's predictions
// scored against simulation ground truth.
//
// Replays the exact 30-cell golden-trace grid (every benchmark x
// {ft, rr, wc} x {base, upmlib}, iterations=3, size_scale=0.25, traced)
// and, for every benchmark, runs the advisor once on the dry-run
// capture. Each prediction is then scored against what the simulator
// actually did, reconstructed from the recorded event stream
// (repro::trace::extract_ground_truth -- no new event kinds, so the
// golden digests stay bit-identical):
//
//  * advisor.needs-migration -- predicted migrated-page sets vs the
//    kPageMigration events: per-cell and micro-averaged precision /
//    recall, plus target-node agreement on the true positives;
//  * advisor.ping-pong -- predicted bounce-frozen pages vs the
//    kPageFreeze events (the steady grid produces none, so this is a
//    zero-false-positive check: precision stays defined and must hold);
//  * advisor.cold-home -- the flagged cold-touch population vs the
//    pages ft-upmlib actually migrated;
//  * advisor.distribution-unnecessary -- the per-benchmark verdict vs
//    the measured cell ranking, plus Kendall tau-a rank agreement
//    between predicted cost and simulated time over the six cells;
//  * first-touch home prediction -- initial_home vs the src node of
//    each page's first real migration;
//  * per-iteration migration vectors, compared exactly and (with
//    --golden) cross-checked against tests/golden/trace_digests.txt.
//
// Exit status is nonzero when any gated metric falls below
// --fail-under (default 0.8) or a migration vector mismatches.
//
// Usage: advisor_validation [--jobs=N] [--fail-under=F] [--json=DIR]
//                           [--golden=PATH]
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "repro/common/table.hpp"
#include "repro/harness/advise.hpp"
#include "repro/harness/atomic_file.hpp"
#include "repro/harness/cli.hpp"
#include "repro/harness/scheduler.hpp"
#include "repro/trace/ground_truth.hpp"

using namespace repro;
using namespace repro::harness;

namespace {

/// The golden-trace grid, bit-for-bit (tests/test_golden_trace.cpp).
std::vector<RunConfig> grid_configs() {
  std::vector<RunConfig> configs;
  for (const auto& benchmark : nas::workload_names()) {
    for (const std::string placement : {"ft", "rr", "wc"}) {
      for (const bool upmlib : {false, true}) {
        RunConfig config;
        config.benchmark = benchmark;
        config.placement = placement;
        config.iterations = 3;
        config.workload.size_scale = 0.25;
        config.trace = true;
        if (upmlib) {
          config.upm_mode = nas::UpmMode::kDistribution;
        }
        configs.push_back(std::move(config));
      }
    }
  }
  return configs;
}

/// Counted set intersection of two ascending page lists.
std::size_t intersection_size(const std::vector<std::uint64_t>& a,
                              const std::vector<std::uint64_t>& b) {
  std::size_t hits = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++hits;
      ++ia;
      ++ib;
    }
  }
  return hits;
}

/// tp / (tp + fp); an empty prediction set has nothing wrong in it.
double ratio_or_one(std::size_t hits, std::size_t total) {
  return total == 0 ? 1.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

/// Kendall tau-a between two parallel score vectors.
double kendall_tau(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = x.size();
  if (n < 2) {
    return 1.0;
  }
  std::int64_t concordant = 0;
  std::int64_t discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double p = (x[i] - x[j]) * (y[i] - y[j]);
      if (p > 0) {
        ++concordant;
      } else if (p < 0) {
        ++discordant;
      }
    }
  }
  const double pairs = static_cast<double>(n * (n - 1)) / 2.0;
  return static_cast<double>(concordant - discordant) / pairs;
}

std::string render_vector(const std::vector<std::uint64_t>& v) {
  if (v.empty()) {
    return "-";
  }
  std::ostringstream os;
  for (std::size_t i = 0; i < v.size(); ++i) {
    os << (i == 0 ? "" : ",") << v[i];
  }
  return os.str();
}

std::string fmt3(double v) { return fmt_double(v, 3); }

/// One scored (benchmark x placement x engine) cell.
struct CellScore {
  std::string benchmark;
  std::string label;
  std::size_t predicted_migrations = 0;
  std::size_t actual_migrations = 0;
  std::size_t migration_hits = 0;  ///< |predicted ∩ actual| pages
  std::size_t target_hits = 0;     ///< hits whose final node also matches
  std::size_t home_hits = 0;       ///< hits whose pre-migration home matches
  std::size_t predicted_frozen = 0;
  std::size_t actual_frozen = 0;
  std::size_t frozen_hits = 0;
  bool vector_match = false;  ///< migrations-per-iteration, exact
  std::string predicted_vector;
  std::string actual_vector;
  double predicted_remote = 0.0;
  double actual_remote = 0.0;
  double predicted_cost = 0.0;
  double actual_seconds = 0.0;
};

struct BenchmarkScore {
  std::string benchmark;
  std::vector<CellScore> cells;
  double tau = 0.0;  ///< Kendall tau-a, predicted cost vs simulated time
  std::string predicted_best;
  std::string actual_best;
  bool verdict_agrees = false;  ///< distribution_unnecessary vs measured
  std::size_t cold_home_flagged = 0;
  std::size_t cold_home_hits = 0;  ///< flagged pages ft-upmlib truly migrated
};

CellScore score_cell(const analysis::PlacementPrediction& predicted,
                     const RunResult& actual) {
  const trace::PlacementGroundTruth truth =
      trace::extract_ground_truth(*actual.trace);
  CellScore score;
  score.benchmark = actual.benchmark;
  score.label = actual.label;
  score.predicted_migrations = predicted.migrated_pages.size();
  score.actual_migrations = truth.migrated_pages.size();
  score.migration_hits =
      intersection_size(predicted.migrated_pages, truth.migrated_pages);

  // Walk the sorted lists once more for the per-page target / home
  // agreement on the true positives.
  auto ip = predicted.migrated_pages.begin();
  auto it = truth.migrated_pages.begin();
  while (ip != predicted.migrated_pages.end() &&
         it != truth.migrated_pages.end()) {
    if (*ip < *it) {
      ++ip;
    } else if (*it < *ip) {
      ++it;
    } else {
      const auto pi =
          static_cast<std::size_t>(ip - predicted.migrated_pages.begin());
      const auto ti =
          static_cast<std::size_t>(it - truth.migrated_pages.begin());
      if (predicted.migrated_targets[pi] == truth.post_migration_home[ti]) {
        ++score.target_hits;
      }
      if (*ip < predicted.initial_home.size() &&
          predicted.initial_home[*ip] == truth.pre_migration_home[ti]) {
        ++score.home_hits;
      }
      ++ip;
      ++it;
    }
  }

  score.predicted_frozen = predicted.frozen_pages.size();
  score.actual_frozen = truth.frozen_pages.size();
  score.frozen_hits =
      intersection_size(predicted.frozen_pages, truth.frozen_pages);

  std::vector<std::uint64_t> actual_vec = truth.migrations_per_iteration;
  std::vector<std::uint64_t> predicted_vec = predicted.migrations_per_iteration;
  // The trace only sizes the vector up to the last migrating iteration;
  // pad both to the run length before comparing.
  const std::size_t iterations =
      std::max({actual_vec.size(), predicted_vec.size(),
                actual.iteration_times.size()});
  actual_vec.resize(iterations, 0);
  predicted_vec.resize(iterations, 0);
  score.vector_match = predicted_vec == actual_vec;
  score.predicted_vector = render_vector(predicted_vec);
  score.actual_vector = render_vector(actual_vec);

  score.predicted_remote = predicted.steady_remote_fraction;
  score.actual_remote = truth.last_remote_fraction();
  score.predicted_cost = predicted.predicted_cost;
  score.actual_seconds = actual.seconds();
  return score;
}

/// Re-derives the advisor.cold-home page population (the diagnostics
/// list is capped per rule, the score wants the whole set).
std::vector<std::uint64_t> cold_home_pages(
    const analysis::AdvisorReport& report, std::uint64_t min_page_lines) {
  std::vector<std::uint64_t> pages;
  const analysis::LocalityDataflow& flow = report.dataflow;
  for (const analysis::PlacementPrediction& cell : report.cells) {
    if (cell.label != "ft-upmlib") {
      continue;
    }
    for (const std::uint64_t page : cell.migrated_pages) {
      if (flow.cold_first_touch[page] != 0 &&
          flow.iteration.page_total(page) >= min_page_lines) {
        pages.push_back(page);
      }
    }
  }
  return pages;
}

std::map<std::string, std::string> load_golden_vectors(
    const std::string& path) {
  std::map<std::string, std::string> goldens;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string benchmark;
    std::string label;
    std::string digest;
    std::string migrations;
    fields >> benchmark >> label >> digest >> migrations;
    goldens[benchmark + " " + label] = migrations;
  }
  return goldens;
}

void append_json_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\';
    }
    os << c;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t jobs = 0;
  std::uint32_t cell_timeout_ms = 0;
  double fail_under = 0.8;
  std::string json_dir;
  std::string golden_path;
  Cli cli("advisor_validation");
  cli.add_uint("jobs", &jobs, "worker threads for the simulation grid",
               /*min=*/1);
  cli.add_uint("cell-timeout-ms", &cell_timeout_ms,
               "abort any cell exceeding this wall-clock budget (ms; env "
               "REPRO_CELL_TIMEOUT_MS)",
               /*min=*/1);
  cli.add_double("fail-under", &fail_under,
                 "fail when a gated metric drops below this (default 0.8)");
  cli.add_string("json", &json_dir,
                 "write BENCH_advisor_validation.json here");
  cli.add_string("golden", &golden_path,
                 "cross-check the simulated migration vectors against this "
                 "golden digest file (tests/golden/trace_digests.txt)");
  switch (cli.parse(argc, argv)) {
    case Cli::Status::kHelp:
      std::cout << cli.usage();
      return 0;
    case Cli::Status::kError:
      std::cerr << "error: " << cli.error() << "\n\n" << cli.usage();
      return 2;
    case Cli::Status::kOk:
      break;
  }

  std::cout << "Advisor validation: static predictions vs the 30-cell "
               "golden-trace grid\n\n";

  const std::vector<RunConfig> configs = grid_configs();
  SweepOptions sweep_options;
  sweep_options.jobs = jobs;
  sweep_options.cell_timeout_ms = cell_timeout_ms;
  const std::vector<RunResult> results =
      run_experiments(configs, sweep_options);

  // One capture + verdict per benchmark (the advisor is placement-
  // blind, all six cells come from the same dataflow).
  std::map<std::string, analysis::AdvisorReport> reports;
  for (const auto& benchmark : nas::workload_names()) {
    RunConfig config;
    config.benchmark = benchmark;
    config.iterations = 3;
    config.workload.size_scale = 0.25;
    reports.emplace(benchmark, advise_benchmark(config));
  }

  std::vector<BenchmarkScore> scores;
  bool gate_failed = false;
  std::size_t cell_index = 0;
  for (const auto& benchmark : nas::workload_names()) {
    const analysis::AdvisorReport& report = reports.at(benchmark);
    BenchmarkScore bench;
    bench.benchmark = benchmark;

    std::vector<double> predicted_costs;
    std::vector<double> actual_times;
    std::vector<std::uint64_t> ft_upm_true_migrations;
    const RunResult* actual_best = nullptr;
    const RunResult* actual_ft_base = nullptr;
    for (int c = 0; c < 6; ++c, ++cell_index) {
      const RunResult& actual = results[cell_index];
      const analysis::PlacementPrediction* predicted = nullptr;
      for (const analysis::PlacementPrediction& cell : report.cells) {
        if (cell.label == actual.label) {
          predicted = &cell;
        }
      }
      if (predicted == nullptr) {
        std::cerr << "no prediction for " << benchmark << " " << actual.label
                  << "\n";
        return 2;
      }
      bench.cells.push_back(score_cell(*predicted, actual));
      predicted_costs.push_back(predicted->predicted_cost);
      actual_times.push_back(actual.seconds());
      if (actual.label == "ft-upmlib") {
        ft_upm_true_migrations =
            trace::extract_ground_truth(*actual.trace).migrated_pages;
      }
      if (actual_best == nullptr || actual.total < actual_best->total) {
        actual_best = &actual;
      }
      if (actual.label == "ft-base") {
        actual_ft_base = &actual;
      }
    }

    bench.tau = kendall_tau(predicted_costs, actual_times);
    bench.predicted_best = report.predicted_best;
    bench.actual_best = actual_best->label;
    // The paper's thesis, measured: ft-base within the advisor's margin
    // of the fastest cell. The verdict agrees when prediction and
    // measurement land on the same side.
    const double actual_gap =
        (static_cast<double>(actual_ft_base->total) -
         static_cast<double>(actual_best->total)) /
        static_cast<double>(actual_best->total);
    bench.verdict_agrees =
        report.distribution_unnecessary ==
        (actual_best->label == "ft-base" || actual_gap <= 0.08);

    // Flagged pages are a subset of the predicted ft-upmlib migrations
    // by construction; precision counts how many the simulator truly
    // migrated.
    const std::vector<std::uint64_t> cold_pages =
        cold_home_pages(report, /*min_page_lines=*/2);
    bench.cold_home_flagged = cold_pages.size();
    bench.cold_home_hits =
        intersection_size(cold_pages, ft_upm_true_migrations);
    scores.push_back(std::move(bench));
  }

  // ---- Per-cell table -------------------------------------------------
  TextTable cells({"cell", "pred mig", "true mig", "precision", "recall",
                   "targets", "ft-homes", "mig vector", "remote err"});
  std::size_t mig_tp = 0;
  std::size_t mig_pred = 0;
  std::size_t mig_true = 0;
  std::size_t target_tp = 0;
  std::size_t home_tp = 0;
  std::size_t frz_tp = 0;
  std::size_t frz_pred = 0;
  std::size_t frz_true = 0;
  bool vectors_ok = true;
  for (const BenchmarkScore& bench : scores) {
    for (const CellScore& cell : bench.cells) {
      mig_tp += cell.migration_hits;
      mig_pred += cell.predicted_migrations;
      mig_true += cell.actual_migrations;
      target_tp += cell.target_hits;
      home_tp += cell.home_hits;
      frz_tp += cell.frozen_hits;
      frz_pred += cell.predicted_frozen;
      frz_true += cell.actual_frozen;
      vectors_ok = vectors_ok && cell.vector_match;
      cells.add_row(
          {bench.benchmark + " " + cell.label,
           std::to_string(cell.predicted_migrations),
           std::to_string(cell.actual_migrations),
           fmt3(ratio_or_one(cell.migration_hits, cell.predicted_migrations)),
           fmt3(ratio_or_one(cell.migration_hits, cell.actual_migrations)),
           fmt3(ratio_or_one(cell.target_hits, cell.migration_hits)),
           fmt3(ratio_or_one(cell.home_hits, cell.migration_hits)),
           cell.vector_match ? "match" : cell.predicted_vector + " != " +
                                             cell.actual_vector,
           fmt3(std::abs(cell.predicted_remote - cell.actual_remote))});
    }
  }
  cells.print(std::cout);
  std::cout << '\n';

  // ---- Per-benchmark verdict table ------------------------------------
  TextTable verdicts({"benchmark", "kendall tau-a", "predicted best",
                      "actual best", "verdict", "cold-home prec"});
  double min_tau = 1.0;
  std::size_t cold_tp = 0;
  std::size_t cold_pred = 0;
  for (const BenchmarkScore& bench : scores) {
    min_tau = std::min(min_tau, bench.tau);
    cold_tp += bench.cold_home_hits;
    cold_pred += bench.cold_home_flagged;
    verdicts.add_row(
        {bench.benchmark, fmt3(bench.tau), bench.predicted_best,
         bench.actual_best, bench.verdict_agrees ? "agrees" : "DISAGREES",
         fmt3(ratio_or_one(bench.cold_home_hits, bench.cold_home_flagged))});
  }
  verdicts.print(std::cout);
  std::cout << '\n';

  // ---- Aggregate + gate -----------------------------------------------
  const double mig_precision = ratio_or_one(mig_tp, mig_pred);
  const double mig_recall = ratio_or_one(mig_tp, mig_true);
  const double target_agreement = ratio_or_one(target_tp, mig_tp);
  const double home_agreement = ratio_or_one(home_tp, mig_tp);
  const double frz_precision = ratio_or_one(frz_tp, frz_pred);
  const double frz_recall = ratio_or_one(frz_tp, frz_true);
  const double cold_precision = ratio_or_one(cold_tp, cold_pred);

  TextTable aggregate({"rule / metric", "value", "support", "gated"});
  aggregate.add_row({"advisor.needs-migration precision", fmt3(mig_precision),
                     std::to_string(mig_pred), "yes"});
  aggregate.add_row({"advisor.needs-migration recall", fmt3(mig_recall),
                     std::to_string(mig_true), "yes"});
  aggregate.add_row({"migration target agreement", fmt3(target_agreement),
                     std::to_string(mig_tp), "yes"});
  aggregate.add_row({"first-touch home agreement", fmt3(home_agreement),
                     std::to_string(mig_tp), "yes"});
  aggregate.add_row({"advisor.ping-pong precision", fmt3(frz_precision),
                     std::to_string(frz_pred), "yes"});
  aggregate.add_row({"advisor.ping-pong recall", fmt3(frz_recall),
                     std::to_string(frz_true), "no"});
  aggregate.add_row({"advisor.cold-home precision", fmt3(cold_precision),
                     std::to_string(cold_pred), "yes"});
  aggregate.add_row({"min kendall tau-a", fmt3(min_tau), "5 benchmarks",
                     "yes (> 0)"});
  aggregate.add_row({"migration vectors exact", vectors_ok ? "yes" : "NO",
                     "30 cells", "yes"});
  aggregate.print(std::cout);

  if (mig_precision < fail_under || mig_recall < fail_under ||
      target_agreement < fail_under || home_agreement < fail_under ||
      frz_precision < fail_under || cold_precision < fail_under) {
    std::cout << "\nFAIL: a gated precision/recall fell below "
              << fmt3(fail_under) << "\n";
    gate_failed = true;
  }
  if (min_tau <= 0.0) {
    std::cout << "\nFAIL: predicted cost ranking anti-correlates with the "
                 "simulation for at least one benchmark\n";
    gate_failed = true;
  }
  if (!vectors_ok) {
    std::cout << "\nFAIL: a predicted migrations-per-iteration vector does "
                 "not match the simulation\n";
    gate_failed = true;
  }

  // ---- Optional golden cross-check ------------------------------------
  if (!golden_path.empty()) {
    const std::map<std::string, std::string> goldens =
        load_golden_vectors(golden_path);
    if (goldens.empty()) {
      std::cout << "\nFAIL: no golden entries at " << golden_path << "\n";
      gate_failed = true;
    }
    std::size_t checked = 0;
    for (const RunResult& result : results) {
      const auto it = goldens.find(result.benchmark + " " + result.label);
      if (it == goldens.end()) {
        continue;
      }
      ++checked;
      std::vector<std::uint64_t> vec;
      for (const trace::IterationMetrics& m : result.iteration_metrics) {
        if (m.iteration >= 1) {
          vec.push_back(m.migrations);
        }
      }
      if (render_vector(vec) != it->second) {
        std::cout << "\nFAIL: " << result.benchmark << " " << result.label
                  << " migration vector " << render_vector(vec)
                  << " != golden " << it->second << "\n";
        gate_failed = true;
      }
    }
    std::cout << "\ngolden cross-check: " << checked << "/" << results.size()
              << " cells matched against " << golden_path << "\n";
  }

  // ---- JSON trajectory -------------------------------------------------
  if (!json_dir.empty()) {
    std::ostringstream os;
    os.precision(17);
    os << "{\"bench\": \"advisor_validation\", \"fail_under\": " << fail_under
       << ", \"aggregate\": {"
       << "\"migration_precision\": " << mig_precision
       << ", \"migration_recall\": " << mig_recall
       << ", \"target_agreement\": " << target_agreement
       << ", \"home_agreement\": " << home_agreement
       << ", \"pingpong_precision\": " << frz_precision
       << ", \"pingpong_recall\": " << frz_recall
       << ", \"pingpong_support\": " << frz_true
       << ", \"cold_home_precision\": " << cold_precision
       << ", \"min_kendall_tau\": " << min_tau
       << ", \"vectors_exact\": " << (vectors_ok ? "true" : "false")
       << ", \"passed\": " << (gate_failed ? "false" : "true")
       << "}, \"benchmarks\": [";
    for (std::size_t b = 0; b < scores.size(); ++b) {
      const BenchmarkScore& bench = scores[b];
      os << (b == 0 ? "\n  " : ",\n  ") << "{\"benchmark\": \"";
      append_json_escaped(os, bench.benchmark);
      os << "\", \"kendall_tau\": " << bench.tau << ", \"predicted_best\": \"";
      append_json_escaped(os, bench.predicted_best);
      os << "\", \"actual_best\": \"";
      append_json_escaped(os, bench.actual_best);
      os << "\", \"verdict_agrees\": "
         << (bench.verdict_agrees ? "true" : "false")
         << ", \"cold_home_flagged\": " << bench.cold_home_flagged
         << ", \"cold_home_hits\": " << bench.cold_home_hits
         << ", \"cells\": [";
      for (std::size_t c = 0; c < bench.cells.size(); ++c) {
        const CellScore& cell = bench.cells[c];
        os << (c == 0 ? "" : ", ") << "{\"label\": \"";
        append_json_escaped(os, cell.label);
        os << "\", \"predicted_migrations\": " << cell.predicted_migrations
           << ", \"actual_migrations\": " << cell.actual_migrations
           << ", \"migration_hits\": " << cell.migration_hits
           << ", \"target_hits\": " << cell.target_hits
           << ", \"home_hits\": " << cell.home_hits
           << ", \"predicted_frozen\": " << cell.predicted_frozen
           << ", \"actual_frozen\": " << cell.actual_frozen
           << ", \"vector_match\": " << (cell.vector_match ? "true" : "false")
           << ", \"predicted_remote\": " << cell.predicted_remote
           << ", \"actual_remote\": " << cell.actual_remote
           << ", \"predicted_cost\": " << cell.predicted_cost
           << ", \"actual_seconds\": " << cell.actual_seconds << "}";
      }
      os << "]}";
    }
    os << "\n]}\n";
    atomic_write_file(json_dir + "/BENCH_advisor_validation.json", os.str());
    std::cout << "JSON written to " << json_dir
              << "/BENCH_advisor_validation.json\n";
  }

  if (gate_failed) {
    return 1;
  }
  std::cout << "\nPASS: every gated metric at or above " << fmt3(fail_under)
            << "\n";
  return 0;
}
