// Coherence sweep: the false-sharing scenario family under the
// line-grain coherence model.
//
// {msi, mesi} x {ft, rr} x {base, upmlib} x {FS, FSP} = 16 cells. FS is
// the false-sharing workload (four threads' fields per coherence line);
// FSP its padded twin (one field per line, same access counts). The
// pair isolates the line pathology: page-grain statistics are nearly
// identical, but FS's coherence-miss rate must exceed FSP's by at least
// 5x (the acceptance gate --smoke enforces in CI), because every flag
// write invalidates the neighbours' copies.
//
// Timings and counters written to BENCH_coherence_sweep.json
// (google-benchmark shape plus per-row coherence counters for
// tools/perf_compare.py and the checked-in baseline) are *simulated*,
// so the advisory compare flags model changes, not host noise.
//
// Usage: coherence_sweep [--iterations=N] [--jobs=N] [--json=DIR]
//                        [--verify-determinism] [--smoke]
#include <sys/resource.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "repro/common/table.hpp"
#include "repro/harness/cli.hpp"
#include "repro/harness/scheduler.hpp"

using namespace repro;
using namespace repro::harness;

namespace {

struct Cell {
  std::string benchmark;  // "FS" | "FSP"
  std::string policy;     // "msi" | "mesi"
  std::string placement;  // "ft" | "rr"
  bool upmlib = false;
};

/// Peak resident set of this process in MiB (Linux ru_maxrss is KiB).
double peak_rss_mib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

RunConfig cell_config(const Cell& cell, std::uint32_t iterations,
                      bool trace) {
  RunConfig config;
  config.benchmark = cell.benchmark;
  config.placement = cell.placement;
  config.coherence = cell.policy;
  config.iterations = iterations;
  if (cell.upmlib) {
    config.upm_mode = nas::UpmMode::kDistribution;
  }
  config.trace = trace;
  return config;
}

std::string cell_name(const Cell& cell) {
  std::ostringstream os;
  os << "CoherenceSweep/" << cell.benchmark << '/' << cell.placement
     << (cell.upmlib ? "-upmlib" : "-base") << '-' << cell.policy;
  return os.str();
}

void write_json(const std::string& dir, const std::vector<Cell>& cells,
                const std::vector<RunResult>& results,
                std::uint32_t iterations) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/BENCH_coherence_sweep.json";
  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "cannot write " << path << '\n';
    return;
  }
  out << "{\n \"context\": {\n"
      << "  \"executable\": \"coherence_sweep\",\n"
      << "  \"peak_rss_mib\": " << peak_rss_mib() << "\n },\n"
      << " \"benchmarks\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double sim_ms_per_iter = ns_to_seconds(results[i].total) * 1e3 /
                                   static_cast<double>(iterations);
    const coherence::CoherenceStats& c = results[i].coherence_totals;
    out << "  {\n"
        << "   \"name\": \"" << cell_name(cells[i]) << "\",\n"
        << "   \"run_name\": \"" << cell_name(cells[i]) << "\",\n"
        << "   \"run_type\": \"iteration\",\n"
        << "   \"repetitions\": 1,\n"
        << "   \"iterations\": " << iterations << ",\n"
        << "   \"real_time\": " << sim_ms_per_iter << ",\n"
        << "   \"cpu_time\": " << sim_ms_per_iter << ",\n"
        << "   \"time_unit\": \"ms\",\n"
        << "   \"coherence_miss_rate\": " << c.coherence_miss_rate() << ",\n"
        << "   \"coherence_miss_lines\": " << c.coherence_miss_lines << ",\n"
        << "   \"upgrades\": " << c.upgrades << ",\n"
        << "   \"invalidations\": " << c.invalidations_sent << ",\n"
        << "   \"writebacks\": " << c.writebacks << "\n"
        << "  }" << (i + 1 < cells.size() ? "," : "") << '\n';
  }
  out << " ]\n}\n";
  std::cout << "\nwrote " << path << '\n';
}

std::size_t compare_digests(const std::vector<Cell>& cells,
                            const std::vector<RunResult>& a,
                            const std::vector<RunResult>& b,
                            const std::string& what) {
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (a[i].trace_digest != b[i].trace_digest) {
      ++mismatches;
      std::cerr << "DIGEST MISMATCH (" << what << "): " << cell_name(cells[i])
                << ' ' << a[i].trace_digest << " != " << b[i].trace_digest
                << '\n';
    }
  }
  return mismatches;
}

/// The acceptance gate: for every (policy, placement, engine)
/// combination present, FS's coherence-miss rate must be >= 5x FSP's
/// (and nonzero). Returns the number of violations.
std::size_t check_ratio(const std::vector<Cell>& cells,
                        const std::vector<RunResult>& results) {
  std::size_t violations = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].benchmark != "FS") {
      continue;
    }
    for (std::size_t j = 0; j < cells.size(); ++j) {
      if (cells[j].benchmark != "FSP" ||
          cells[j].policy != cells[i].policy ||
          cells[j].placement != cells[i].placement ||
          cells[j].upmlib != cells[i].upmlib) {
        continue;
      }
      const double fs = results[i].coherence_totals.coherence_miss_rate();
      const double fsp = results[j].coherence_totals.coherence_miss_rate();
      if (fs <= 0.0 || fs < 5.0 * fsp) {
        ++violations;
        std::cerr << "RATIO VIOLATION: " << cell_name(cells[i])
                  << " coherence-miss rate " << fs << " is not >= 5x "
                  << cell_name(cells[j]) << "'s " << fsp << '\n';
      }
    }
  }
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  bool verify = false;
  bool smoke = false;
  std::string json_dir;
  std::uint64_t iterations = 6;
  std::uint64_t jobs = 0;
  std::uint32_t cell_timeout_ms = 0;

  Cli cli("coherence_sweep");
  cli.add_uint("iterations", &iterations, "timed iterations per cell", 1);
  cli.add_uint("jobs", &jobs, "host worker threads (0 = auto)");
  cli.add_uint("cell-timeout-ms", &cell_timeout_ms,
               "abort any cell exceeding this wall-clock budget (ms; env "
               "REPRO_CELL_TIMEOUT_MS)",
               /*min=*/1);
  cli.add_string("json", &json_dir,
                 "directory for BENCH_coherence_sweep.json "
                 "(google-benchmark shape plus coherence counters)");
  cli.add_flag("verify-determinism", &verify,
               "run the matrix under --jobs, --jobs=1 and again under "
               "--jobs, and require byte-identical trace digests");
  cli.add_flag("smoke", &smoke,
               "CI mode: the FS/FSP msi ft-base pair, tracing on, jobs=1 "
               "vs jobs=4 digest check plus the 5x miss-rate gate");
  switch (cli.parse(argc, argv)) {
    case Cli::Status::kHelp:
      std::cout << cli.usage();
      return 0;
    case Cli::Status::kError:
      std::cerr << "error: " << cli.error() << "\n\n" << cli.usage();
      return 2;
    case Cli::Status::kOk:
      break;
  }

  std::vector<Cell> cells;
  if (smoke) {
    iterations = 4;
    cells.push_back(Cell{"FS", "msi", "ft", false});
    cells.push_back(Cell{"FSP", "msi", "ft", false});
  } else {
    for (const std::string policy : {"msi", "mesi"}) {
      for (const std::string placement : {"ft", "rr"}) {
        for (const bool upmlib : {false, true}) {
          for (const std::string bench : {"FS", "FSP"}) {
            cells.push_back(Cell{bench, policy, placement, upmlib});
          }
        }
      }
    }
  }

  const bool trace = verify || smoke;
  std::vector<RunConfig> configs;
  configs.reserve(cells.size());
  for (const Cell& cell : cells) {
    configs.push_back(cell_config(
        cell, static_cast<std::uint32_t>(iterations), trace));
  }

  std::cout << "Coherence sweep: " << cells.size()
            << " cells, FS (false sharing) vs FSP (padded), iterations="
            << iterations << "\n\n";

  const std::size_t run_jobs =
      effective_jobs(std::max<std::uint64_t>(1, jobs == 0 ? 0 : jobs));
  const auto sweep_with = [cell_timeout_ms](std::size_t sweep_jobs) {
    SweepOptions sweep_options;
    sweep_options.jobs = sweep_jobs;
    sweep_options.cell_timeout_ms = cell_timeout_ms;
    return sweep_options;
  };
  const std::vector<RunResult> results =
      run_experiments(configs, sweep_with(run_jobs));

  if (trace) {
    const std::size_t check_jobs = smoke ? 4 : run_jobs;
    const std::vector<RunResult> serial =
        run_experiments(configs, sweep_with(1));
    const std::vector<RunResult> parallel =
        check_jobs == run_jobs ? results
                               : run_experiments(configs, sweep_with(check_jobs));
    std::size_t mismatches = compare_digests(cells, results, serial, "jobs");
    mismatches += compare_digests(cells, results, parallel, "rerun");
    if (mismatches != 0) {
      std::cerr << mismatches << " cell(s) not byte-identical\n";
      return 1;
    }
    std::cout << "determinism: all " << cells.size()
              << " cell(s) byte-identical across job counts and reruns\n\n";
  }

  TextTable table({"bench", "label", "sim ms/iter", "coh miss rate",
                   "invalidations", "upgrades", "digest"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double sim_ms = ns_to_seconds(results[i].total) * 1e3 /
                          static_cast<double>(iterations);
    const coherence::CoherenceStats& c = results[i].coherence_totals;
    table.add_row(
        {cells[i].benchmark, results[i].label, fmt_double(sim_ms, 3),
         fmt_double(c.coherence_miss_rate(), 4),
         std::to_string(c.invalidations_sent), std::to_string(c.upgrades),
         results[i].trace_digest.empty() ? "-" : results[i].trace_digest});
  }
  table.print(std::cout);

  const std::size_t violations = check_ratio(cells, results);
  if (violations != 0) {
    std::cerr << violations << " FS/FSP ratio violation(s)\n";
    return 1;
  }
  std::cout << "\nFS >= 5x FSP coherence-miss rate holds for every "
               "(policy, placement, engine) pair\n";

  if (!json_dir.empty()) {
    write_json(json_dir, cells, results,
               static_cast<std::uint32_t>(iterations));
  }
  return 0;
}
