// UPMlib ablations: the design choices DESIGN.md calls out.
//
//  (a) competitive threshold sweep (paper Section 3.3's `thr`);
//  (b) critical-page cap sweep for record--replay (the paper's n = 20);
//  (c) ping-pong freezing on/off;
//  (d) run-length amortization: the same engine on MG with 4 (paper)
//      vs. more iterations -- the one place our scaled-down runs cannot
//      amortize the one-time migration cost that the paper's longer
//      wall-times absorbed.
//
// Usage: ablation_upmlib [--fast] [--jobs=N]
#include <iostream>
#include <string>

#include "repro/common/env.hpp"
#include "repro/common/stats.hpp"
#include "repro/common/table.hpp"
#include "repro/harness/figures.hpp"
#include "repro/harness/scheduler.hpp"
#include "repro/omp/machine.hpp"
#include "repro/omp/schedule.hpp"
#include "repro/upmlib/upmlib.hpp"

using namespace repro;
using namespace repro::harness;

int main(int argc, char** argv) {
  FigureOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fast") {
      Env::global().set("REPRO_FAST", "1");
    } else if (arg == "--no-fast-forward") {
      options.no_fast_forward = true;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = std::stoul(arg.substr(7));
    } else {
      std::cerr << "unknown argument: " << arg << '\n';
      return 1;
    }
  }

  {
    // (a) threshold sweep on SP under random placement.
    std::cout << "(a) competitive threshold sweep (SP, random "
                 "placement)\n";
    const std::vector<double> thresholds = {1.2, 2.0, 4.0, 16.0};
    std::vector<RunConfig> configs;
    for (const double thr : thresholds) {
      RunConfig config = base_config("SP", options);
      config.placement = "rand";
      config.upm_mode = nas::UpmMode::kDistribution;
      config.upm.threshold = thr;
      configs.push_back(std::move(config));
    }
    const std::vector<RunResult> results =
        run_experiments(configs, options.sweep());
    TextTable table({"thr", "time (s)", "migrations", "remote frac"});
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      table.add_row({fmt_double(thresholds[i], 1),
                     fmt_double(r.seconds(), 3),
                     std::to_string(r.upm_stats.distribution_migrations),
                     fmt_double(r.memory_totals.remote_fraction(), 3)});
    }
    table.print(std::cout);
    std::cout << "Too high a threshold leaves misplaced pages in place; "
                 "too low risks moving shared pages.\n\n";
  }

  {
    // (b) critical-page cap sweep for record-replay on BT.
    std::cout << "(b) record-replay critical-page cap (BT, first touch, "
                 "compute scale 2)\n";
    const std::vector<std::size_t> caps = {5, 20, 80, 320};
    std::vector<RunConfig> configs;
    for (const std::size_t cap : caps) {
      RunConfig config = base_config("BT", options);
      config.upm_mode = nas::UpmMode::kRecordReplay;
      config.upm.max_critical_pages = cap;
      config.compute_scale = 2;
      configs.push_back(std::move(config));
    }
    const std::vector<RunResult> results =
        run_experiments(configs, options.sweep());
    TextTable table({"n", "time (s)", "z_solve (s)", "recrep cost (s)"});
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      table.add_row({std::to_string(caps[i]), fmt_double(r.seconds(), 3),
                     fmt_double(ns_to_seconds(r.phase_time("z_solve")), 3),
                     fmt_double(ns_to_seconds(r.upm_stats.recrep_cost), 3)});
    }
    table.print(std::cout);
    std::cout << "The paper caps n to limit the on-critical-path cost; "
                 "past the set of genuinely critical pages, extra "
                 "migrations only add overhead.\n\n";
  }

  {
    // (c) freezing on/off on FT under first touch + distribution mode.
    std::cout << "(c) ping-pong freezing (FT, random placement)\n";
    std::vector<RunConfig> configs;
    for (const bool freeze : {true, false}) {
      RunConfig config = base_config("FT", options);
      config.placement = "rand";
      config.upm_mode = nas::UpmMode::kDistribution;
      config.upm.freeze_bouncing_pages = freeze;
      configs.push_back(std::move(config));
    }
    const std::vector<RunResult> results =
        run_experiments(configs, options.sweep());
    TextTable table({"freeze", "time (s)", "migrations", "frozen pages"});
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      table.add_row({i == 0 ? "on" : "off", fmt_double(r.seconds(), 3),
                     std::to_string(r.upm_stats.distribution_migrations),
                     std::to_string(r.upm_stats.frozen_pages)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  {
    // (e) replication (paper Section 1.2 extension). None of the NAS
    // codes has read-only multi-reader hot data (CG's gather vector is
    // rewritten every iteration, so the policy correctly declines it);
    // a synthetic lookup-table workload shows the win: every thread
    // gathers a shared read-only table each iteration.
    std::cout << "(e) read-only page replication (synthetic lookup "
                 "table, 16 threads)\n";
    TextTable table({"replication", "time (s)", "replications",
                     "remote frac"});
    for (const bool replicate : {false, true}) {
      auto machine = omp::Machine::create(memsys::MachineConfig{});
      machine->set_placement("ft");
      omp::Runtime& rt = machine->runtime();
      const std::uint32_t lines = machine->config().lines_per_page();
      const auto lut =
          machine->address_space().allocate("lut", 4 * kMiB);
      const auto priv =
          machine->address_space().allocate("work", 160 * kMiB);
      upm::UpmConfig upm_config;
      upm_config.enable_replication = replicate;
      upm_config.replication_min_nodes = 4;
      upm_config.replication_min_count = 64;
      upm_config.max_replicas = 15;
      upm::Upmlib upmlib(machine->mmci(), rt, upm_config);
      upmlib.memrefcnt(lut);
      const auto sweep = [&] {
        sim::RegionBuilder region = rt.make_region();
        for (std::uint32_t t = 0; t < rt.num_threads(); ++t) {
          const auto block =
              omp::static_block(ThreadId(t), rt.num_threads(), priv.count);
          for (std::uint64_t p = 0; p < lut.count; ++p) {
            region.access(ThreadId(t), lut.page(p), lines, false,
                          lines * 60);
          }
          for (std::uint64_t p = block.begin; p < block.end; ++p) {
            region.access(ThreadId(t), priv.page(p), lines, true,
                          lines * 60, /*stream=*/true);
          }
        }
        rt.run("lookup", std::move(region));
      };
      sweep();  // cold start
      upmlib.reset_hot_counters();
      machine->memory().reset_stats();
      const Ns t0 = rt.now();
      std::size_t migrations = 1;
      for (int step = 1; step <= 12; ++step) {
        sweep();
        if (step == 1 || migrations > 0) {
          migrations = upmlib.migrate_memory();
        }
      }
      table.add_row(
          {replicate ? "on" : "off",
           fmt_double(ns_to_seconds(rt.now() - t0), 3),
           std::to_string(upmlib.stats().replications),
           fmt_double(machine->memory().total_stats().remote_fraction(),
                      3)});
    }
    table.print(std::cout);
    std::cout << "With replication every node gains a local copy of the "
                 "table; without it the competitive criterion correctly "
                 "refuses to migrate an all-readers page anywhere.\n\n";
  }

  {
    // (d) amortization: MG with its paper-faithful 4 iterations vs more.
    std::cout << "(d) run-length amortization (MG, round-robin "
                 "placement)\n";
    const std::vector<std::uint32_t> iteration_counts = {4, 12, 40};
    std::vector<RunConfig> configs;
    for (const std::uint32_t iters : iteration_counts) {
      RunConfig plain = base_config("MG", options);
      plain.placement = "rr";
      plain.iterations = iters;
      RunConfig upm = plain;
      upm.upm_mode = nas::UpmMode::kDistribution;
      configs.push_back(std::move(plain));
      configs.push_back(std::move(upm));
    }
    const std::vector<RunResult> results =
        run_experiments(configs, options.sweep());
    TextTable table({"iterations", "rr-base (s)", "rr-upmlib (s)",
                     "upmlib vs plain"});
    for (std::size_t i = 0; i < iteration_counts.size(); ++i) {
      const RunResult& base = results[2 * i];
      const RunResult& with = results[2 * i + 1];
      table.add_row({std::to_string(iteration_counts[i]),
                     fmt_double(base.seconds(), 3),
                     fmt_double(with.seconds(), 3),
                     fmt_percent(slowdown(with.seconds(),
                                          base.seconds()))});
    }
    table.print(std::cout);
    std::cout << "At the paper's 4 iterations our scaled-down MG cannot "
                 "amortize the one-time migration batch; with more "
                 "iterations UPMlib wins, converging to the paper's "
                 "behaviour (see EXPERIMENTS.md).\n";
  }
  return 0;
}
