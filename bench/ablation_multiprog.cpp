// Multiprogramming ablation (beyond the paper's scope by its own
// footnote 3, which defers scheduler interference to the authors'
// companion work): what happens when the OS rebinds threads to
// different processors mid-run, invalidating the placement UPMlib
// established — and how the engine recovers when the scheduler
// notifies it.
//
// Scenario: BT under first-touch with UPMlib; after one third of the
// iterations the scheduler rotates every thread to the next node (a
// gang rescheduling after another job departs). Three configurations:
//   (a) no UPMlib           — the program keeps paying remote accesses;
//   (b) UPMlib, no notify   — the engine already self-deactivated and
//                             never notices the upheaval;
//   (c) UPMlib + notify     — notify_thread_rebinding() reactivates the
//                             engine, which re-distributes everything.
//
// Usage: ablation_multiprog [--iterations=N]
#include <iostream>
#include <string>

#include "repro/common/table.hpp"
#include "repro/nas/workload.hpp"
#include "repro/omp/machine.hpp"
#include "repro/upmlib/upmlib.hpp"

using namespace repro;

namespace {

struct Outcome {
  double total_s = 0;
  double post_rebind_iter_ms = 0;
  std::uint64_t migrations = 0;
};

Outcome run(std::uint32_t iterations, bool use_upmlib, bool notify) {
  auto machine = omp::Machine::create(memsys::MachineConfig{});
  machine->set_placement("ft");
  auto workload = nas::make_workload("BT", {});
  workload->setup(*machine);

  std::unique_ptr<upm::Upmlib> upmlib;
  if (use_upmlib) {
    upmlib = std::make_unique<upm::Upmlib>(machine->mmci(),
                                           machine->runtime(), upm::UpmConfig{});
    workload->register_hot(*upmlib);
  }
  workload->cold_start(*machine);
  if (upmlib) {
    upmlib->reset_hot_counters();
  }

  omp::Runtime& rt = machine->runtime();
  const Ns t0 = rt.now();
  std::size_t last_migrations = 1;
  Ns last_iter = 0;
  for (std::uint32_t step = 1; step <= iterations; ++step) {
    if (step == iterations / 3 + 1) {
      // The scheduler rotates every thread one node over (a chain of
      // pairwise exchanges keeps the binding a bijection throughout).
      const std::size_t threads = rt.num_threads();
      for (std::uint32_t t = 0; t + 1 < threads; ++t) {
        rt.swap_binding(ThreadId(t),
                        ThreadId(static_cast<std::uint32_t>(t + 1)));
      }
      if (upmlib && notify) {
        upmlib->notify_thread_rebinding();
        last_migrations = 1;
      }
    }
    const Ns iter_start = rt.now();
    workload->iteration(*machine, nas::IterationContext{}, step);
    if (upmlib && (step == 1 || last_migrations > 0)) {
      last_migrations = upmlib->migrate_memory();
    }
    last_iter = rt.now() - iter_start;
  }
  Outcome out;
  out.total_s = ns_to_seconds(rt.now() - t0);
  out.post_rebind_iter_ms = ns_to_ms(last_iter);
  if (upmlib) {
    out.migrations = upmlib->stats().distribution_migrations;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t iterations = 30;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--iterations=", 0) == 0) {
      iterations = static_cast<std::uint32_t>(std::stoul(arg.substr(13)));
    } else {
      std::cerr << "unknown argument: " << arg << '\n';
      return 1;
    }
  }

  std::cout << "Multiprogramming ablation: BT, first touch, thread "
               "rotation after iteration " << iterations / 3 << " of "
            << iterations << "\n\n";

  TextTable table({"configuration", "total (s)", "final iter (ms)",
                   "migrations"});
  const Outcome plain = run(iterations, false, false);
  const Outcome deaf = run(iterations, true, false);
  const Outcome aware = run(iterations, true, true);
  table.add_row({"no UPMlib", fmt_double(plain.total_s, 3),
                 fmt_double(plain.post_rebind_iter_ms, 2), "0"});
  table.add_row({"UPMlib, not notified", fmt_double(deaf.total_s, 3),
                 fmt_double(deaf.post_rebind_iter_ms, 2),
                 std::to_string(deaf.migrations)});
  table.add_row({"UPMlib + scheduler notify", fmt_double(aware.total_s, 3),
                 fmt_double(aware.post_rebind_iter_ms, 2),
                 std::to_string(aware.migrations)});
  table.print(std::cout);
  std::cout << "\nWithout notification the self-deactivated engine never "
               "sees the upheaval; with it, the first post-rebinding "
               "pass restores thread-local placement (companion-paper "
               "mechanism).\n";
  return 0;
}
