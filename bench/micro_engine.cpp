// Google-benchmark microbenchmarks for the building blocks: cache
// touches, directory transitions, counter updates, the memory-system
// access path, page migration, UPMlib scan/migrate passes and whole
// simulated iterations. These measure *host* performance of the
// simulator (how fast the reproduction runs), not simulated time.
#include <benchmark/benchmark.h>

#include "repro/memsys/memory_system.hpp"
#include "repro/nas/workload.hpp"
#include "repro/omp/machine.hpp"
#include "repro/sim/program.hpp"
#include "repro/topology/topology.hpp"
#include "repro/upmlib/upmlib.hpp"
#include "repro/vm/counters.hpp"

namespace {

using namespace repro;

void BM_PageCacheTouch(benchmark::State& state) {
  memsys::PageCache cache(256);
  std::uint64_t page = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.touch(VPage(page)));
    page = (page + 1) % 512;  // always-miss cyclic sweep
  }
}
BENCHMARK(BM_PageCacheTouch);

void BM_DirectoryWrite(benchmark::State& state) {
  memsys::Directory dir(16);
  std::uint32_t proc = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dir.on_write(ProcId(proc), VPage(7)));
    proc = (proc + 1) % 16;
  }
}
BENCHMARK(BM_DirectoryWrite);

void BM_CounterIncrement(benchmark::State& state) {
  vm::RefCounters counters(1024, 16, 11);
  std::uint64_t frame = 0;
  for (auto _ : state) {
    counters.increment(FrameId(frame), NodeId(3), 16);
    frame = (frame + 1) % 1024;
  }
}
BENCHMARK(BM_CounterIncrement);

void BM_TopologyHops(benchmark::State& state) {
  const topo::FatHypercube topology(64);
  std::uint32_t a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology.hops(NodeId(a), NodeId(63 - a)));
    a = (a + 1) % 64;
  }
}
BENCHMARK(BM_TopologyHops);

void BM_MemoryAccess(benchmark::State& state) {
  auto machine = omp::Machine::create(memsys::MachineConfig{});
  Ns now = 0;
  std::uint64_t page = 0;
  for (auto _ : state) {
    const auto r = machine->memory().access(
        now, {ProcId(0), VPage(page), 128, false});
    now += r.elapsed;
    page = (page + 1) % 1024;  // thrash: all misses
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MemoryAccess);

void BM_PageMigration(benchmark::State& state) {
  auto machine = omp::Machine::create(memsys::MachineConfig{});
  for (std::uint64_t p = 0; p < 4096; ++p) {
    machine->memory().access(0, {ProcId(0), VPage(p), 1, true});
  }
  std::uint64_t page = 0;
  std::uint32_t target = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        machine->kernel().migrate_page(VPage(page), NodeId(target)));
    page = (page + 1) % 4096;
    target = 1 + (target + 1) % 15;
  }
}
BENCHMARK(BM_PageMigration);

void BM_UpmlibScanPass(benchmark::State& state) {
  // A full migrate_memory() scan over `range` hot pages where nothing
  // qualifies: the steady-state cost of the engine.
  auto machine = omp::Machine::create(memsys::MachineConfig{});
  const auto hot = machine->address_space().allocate_pages(
      "hot", static_cast<std::uint64_t>(state.range(0)));
  upm::UpmConfig config;
  config.freeze_bouncing_pages = false;
  for (std::uint64_t p = 0; p < hot.count; ++p) {
    machine->memory().access(0, {ProcId(0), hot.page(p), 1, true});
  }
  for (auto _ : state) {
    // A fresh engine per pass (the real one deactivates after the first
    // empty pass).
    upm::Upmlib upmlib(machine->mmci(), machine->runtime(), config);
    upmlib.memrefcnt(hot);
    benchmark::DoNotOptimize(upmlib.migrate_memory());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UpmlibScanPass)->Arg(1024)->Arg(8192);

void BM_TlbLookup(benchmark::State& state) {
  memsys::MachineConfig config;
  config.tlb_entries = 128;
  auto machine = omp::Machine::create(config);
  Ns now = 0;
  std::uint64_t page = 0;
  for (auto _ : state) {
    const auto r = machine->memory().access(
        now, {ProcId(0), VPage(page), 1, false});
    now += r.elapsed;
    page = (page + 1) % 256;  // 2x TLB reach: every lookup misses
  }
}
BENCHMARK(BM_TlbLookup);

void BM_Replication(benchmark::State& state) {
  auto machine = omp::Machine::create(memsys::MachineConfig{});
  for (std::uint64_t p = 0; p < 8192; ++p) {
    machine->memory().access(0, {ProcId(0), VPage(p), 1, true});
  }
  std::uint64_t page = 0;
  std::uint32_t node = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        machine->kernel().replicate_page(VPage(page), NodeId(node)));
    machine->kernel().collapse_replicas(VPage(page));
    page = (page + 1) % 8192;
    node = 1 + (node + 1) % 15;
  }
}
BENCHMARK(BM_Replication);

void BM_CompiledRegionRun(benchmark::State& state) {
  // Batched-engine throughput on a compiled region program: 16 threads
  // striding over a shared array, compiled once and replayed.
  auto machine = omp::Machine::create(memsys::MachineConfig{});
  machine->set_placement("ft");
  omp::Runtime& rt = machine->runtime();
  const std::uint32_t lines = machine->config().lines_per_page();
  const auto data = machine->address_space().allocate("data", 16 * kMiB);
  sim::RegionBuilder region = rt.make_region();
  for (std::uint32_t t = 0; t < rt.num_threads(); ++t) {
    for (std::uint64_t p = t; p < data.count; p += rt.num_threads()) {
      region.access(ThreadId(t), data.page(p), lines, false, lines * 60);
    }
  }
  const sim::RegionProgram program =
      sim::RegionProgram::compile(std::move(region));
  for (auto _ : state) {
    rt.run("micro", program);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(program.size()));
}
BENCHMARK(BM_CompiledRegionRun);

void BM_NasIteration(benchmark::State& state) {
  // Host cost of simulating one full BT iteration (~26k events).
  auto machine = omp::Machine::create(memsys::MachineConfig{});
  machine->set_placement("ft");
  nas::WorkloadParams params;
  auto workload = nas::make_workload("BT", params);
  workload->setup(*machine);
  workload->cold_start(*machine);
  std::uint32_t step = 1;
  for (auto _ : state) {
    workload->iteration(*machine, nas::IterationContext{}, step++);
  }
}
BENCHMARK(BM_NasIteration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
