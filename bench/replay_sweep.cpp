// Replay sweep: the compiled (direct-simulation) frontend vs the
// trace-replay frontend vs pipelined trace replay.
//
// One benchmark (default CG) is dry-dumped once to an RTRC trace --
// the recorded stream is placement/engine independent, so the same
// file replays under every cell -- and each {ft, rr, wc} x {base,
// upmlib} cell is then timed three ways on the host wall clock:
//
//   direct:    workload regions compiled and dispatched in-process;
//   replay:    chunks decoded lazily on the simulation thread;
//   pipelined: chunks decoded on a producer thread, fed to the
//              timing backend over the SPSC ring buffer.
//
// A separate traced verification pass asserts all three modes produce
// byte-identical canonical-trace digests and migration vectors (the
// replay-equivalence guarantee of DESIGN.md section 16). Decode-only
// throughput (Mops/s) is measured by draining the trace without a
// simulator attached.
//
// Timings written to BENCH_replay_sweep.json (google-benchmark shape,
// for tools/perf_compare.py and the checked-in baseline) are *host*
// wall-clock milliseconds: this sweep exists to measure frontend
// overhead, not simulated time (which the digest check proves equal).
//
// Usage: replay_sweep [--benchmark=CG] [--iterations=N] [--scale=X]
//                     [--json=DIR] [--trace-file=PATH] [--smoke]
//                     [--golden=FILE] [--check-speedup] [--no-verify]
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "repro/common/table.hpp"
#include "repro/harness/cli.hpp"
#include "repro/harness/run.hpp"
#include "repro/harness/scheduler.hpp"
#include "repro/sim/trace_replayer.hpp"
#include "repro/trace/metrics.hpp"

using namespace repro;
using namespace repro::harness;

namespace {

struct Cell {
  std::string placement;  // "ft" | "rr" | "wc"
  bool upmlib = false;
};

const char* kModes[] = {"direct", "replay", "pipelined"};

struct CellTiming {
  double ms[3] = {0.0, 0.0, 0.0};  // indexed like kModes
};

/// Peak resident set of this process in MiB (Linux ru_maxrss is KiB).
double peak_rss_mib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// --cell-timeout-ms (0 = env REPRO_CELL_TIMEOUT_MS, else off); applied
/// to every cell this binary runs, direct or replayed.
std::uint32_t g_cell_timeout_ms = 0;

RunConfig cell_config(const std::string& benchmark, const Cell& cell,
                      std::uint32_t iterations, double scale, bool trace) {
  RunConfig config;
  config.cell_timeout_ms = effective_cell_timeout_ms(g_cell_timeout_ms);
  config.benchmark = benchmark;
  config.placement = cell.placement;
  config.iterations = iterations;
  config.workload.size_scale = scale;
  if (cell.upmlib) {
    config.upm_mode = nas::UpmMode::kDistribution;
  }
  config.trace = trace;
  return config;
}

std::string cell_label(const Cell& cell) {
  return cell.placement + (cell.upmlib ? "-upmlib" : "-base");
}

std::string row_name(const std::string& benchmark, const Cell& cell,
                     const char* mode) {
  return "ReplaySweep/" + benchmark + "/" + cell_label(cell) + "/" + mode;
}

/// Runs one cell in `mode` (0 = direct, 1 = replay, 2 = pipelined) and
/// returns the result; wall-clock cost lands in `*ms`.
RunResult run_mode(const RunConfig& base, const std::string& trace_file,
                   int mode, double* ms) {
  RunConfig config = base;
  if (mode > 0) {
    config.replay = trace_file;
    config.pipeline = mode == 2;
  }
  const double begin = now_ms();
  RunResult result = run_benchmark(config);
  *ms = now_ms() - begin;
  return result;
}

std::vector<std::uint64_t> migration_vector(const RunResult& result) {
  std::vector<std::uint64_t> out;
  for (const trace::IterationMetrics& m : result.iteration_metrics) {
    if (m.iteration >= 1) {
      out.push_back(m.migrations);
    }
  }
  return out;
}

std::string render_vector(const std::vector<std::uint64_t>& v) {
  if (v.empty()) {
    return "-";
  }
  std::ostringstream os;
  for (std::size_t i = 0; i < v.size(); ++i) {
    os << (i == 0 ? "" : ",") << v[i];
  }
  return os.str();
}

/// Drains the trace through a serial TraceReplayer with no simulator
/// attached; returns decode throughput in Mops/s.
double decode_mops(const std::string& trace_file, std::uint64_t total_ops) {
  const double begin = now_ms();
  sim::TraceReplayer replayer(trace_file);
  sim::ReplayItem item;
  std::uint64_t items = 0;
  while (replayer.next(item)) {
    ++items;
  }
  const double seconds = (now_ms() - begin) / 1e3;
  if (seconds <= 0.0 || items == 0) {
    return 0.0;
  }
  return static_cast<double>(total_ops) / 1e6 / seconds;
}

/// tests/golden/trace_digests.txt rows: "benchmark label digest migs".
std::map<std::string, std::pair<std::string, std::string>> load_goldens(
    const std::string& path) {
  std::map<std::string, std::pair<std::string, std::string>> goldens;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string benchmark;
    std::string label;
    std::string digest;
    std::string migrations;
    fields >> benchmark >> label >> digest >> migrations;
    goldens[benchmark + " " + label] = {digest, migrations};
  }
  return goldens;
}

/// Traced verification: direct vs replay vs pipelined must agree on the
/// canonical-trace digest and the migration vector. Returns the number
/// of mismatches; fills `digest_out` with the direct digest.
std::size_t verify_cell(const RunConfig& traced, const std::string& trace_file,
                        std::string* digest_out, std::string* migs_out) {
  double ignored = 0.0;
  const RunResult direct = run_mode(traced, trace_file, 0, &ignored);
  const RunResult replay = run_mode(traced, trace_file, 1, &ignored);
  const RunResult pipelined = run_mode(traced, trace_file, 2, &ignored);
  *digest_out = direct.trace_digest;
  *migs_out = render_vector(migration_vector(direct));
  std::size_t mismatches = 0;
  for (const RunResult* r : {&replay, &pipelined}) {
    if (r->trace_digest != direct.trace_digest) {
      ++mismatches;
      std::cerr << "DIGEST MISMATCH: " << direct.benchmark << ' '
                << direct.label << ": " << r->trace_digest
                << " != direct " << direct.trace_digest << '\n';
    }
    if (migration_vector(*r) != migration_vector(direct)) {
      ++mismatches;
      std::cerr << "MIGRATION MISMATCH: " << direct.benchmark << ' '
                << direct.label << ": " << render_vector(migration_vector(*r))
                << " != direct " << *migs_out << '\n';
    }
  }
  return mismatches;
}

void write_json(const std::string& dir, const std::string& benchmark,
                const std::vector<Cell>& cells,
                const std::vector<CellTiming>& timings, double mops,
                std::uint32_t iterations) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/BENCH_replay_sweep.json";
  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "cannot write " << path << '\n';
    return;
  }
  out << "{\n \"context\": {\n"
      << "  \"executable\": \"replay_sweep\",\n"
      << "  \"decode_mops\": " << mops << ",\n"
      << "  \"peak_rss_mib\": " << peak_rss_mib() << "\n },\n"
      << " \"benchmarks\": [\n";
  bool first = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (int mode = 0; mode < 3; ++mode) {
      const std::string name = row_name(benchmark, cells[i], kModes[mode]);
      const double speedup =
          timings[i].ms[mode] > 0.0 ? timings[i].ms[1] / timings[i].ms[mode]
                                    : 0.0;
      out << (first ? "" : ",\n") << "  {\n"
          << "   \"name\": \"" << name << "\",\n"
          << "   \"run_name\": \"" << name << "\",\n"
          << "   \"run_type\": \"iteration\",\n"
          << "   \"repetitions\": 1,\n"
          << "   \"iterations\": " << iterations << ",\n"
          << "   \"real_time\": " << timings[i].ms[mode] << ",\n"
          << "   \"cpu_time\": " << timings[i].ms[mode] << ",\n"
          << "   \"time_unit\": \"ms\",\n"
          << "   \"speedup_vs_replay\": " << speedup << "\n"
          << "  }";
      first = false;
    }
  }
  out << "\n ]\n}\n";
  std::cout << "\nwrote " << path << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  std::string benchmark = "CG";
  std::uint64_t iterations = 6;
  double scale = 0.25;
  std::string json_dir;
  std::string trace_file;
  std::string golden_file;
  bool smoke = false;
  bool check_speedup = false;
  bool no_verify = false;

  Cli cli("replay_sweep");
  cli.add_string("benchmark", &benchmark,
                 "BT | SP | CG | MG | FT: the workload to dump and replay "
                 "(default CG)");
  cli.add_uint("iterations", &iterations, "timed iterations per cell", 1);
  cli.add_uint("cell-timeout-ms", &g_cell_timeout_ms,
               "abort any cell exceeding this wall-clock budget (ms; env "
               "REPRO_CELL_TIMEOUT_MS)",
               /*min=*/1);
  cli.add_double("scale", &scale, "problem-size multiplier");
  cli.add_string("json", &json_dir,
                 "directory for BENCH_replay_sweep.json (google-benchmark "
                 "shape, host wall-clock ms)");
  cli.add_string("trace-file", &trace_file,
                 "where to dump the RTRC trace (default: a file in the "
                 "system temp directory)");
  cli.add_string("golden", &golden_file,
                 "with --smoke: also compare the direct digest against "
                 "this tests/golden/trace_digests.txt");
  cli.add_flag("smoke", &smoke,
               "CI mode: one golden cell (CG rr-upmlib, iterations=3), "
               "traced three-way equivalence check, no timing sweep");
  cli.add_flag("check-speedup", &check_speedup,
               "require pipelined replay >= 1.2x faster than serial "
               "replay in every cell (skipped on single-core hosts)");
  cli.add_flag("no-verify", &no_verify,
               "skip the traced three-way equivalence pass (timing only)");
  switch (cli.parse(argc, argv)) {
    case Cli::Status::kHelp:
      std::cout << cli.usage();
      return 0;
    case Cli::Status::kError:
      std::cerr << "error: " << cli.error() << "\n\n" << cli.usage();
      return 2;
    case Cli::Status::kOk:
      break;
  }

  std::vector<Cell> cells;
  if (smoke) {
    benchmark = "CG";
    iterations = 3;
    scale = 0.25;
    cells.push_back(Cell{"rr", true});
  } else {
    for (const std::string placement : {"ft", "rr", "wc"}) {
      for (const bool upmlib : {false, true}) {
        cells.push_back(Cell{placement, upmlib});
      }
    }
  }
  if (trace_file.empty()) {
    trace_file = (std::filesystem::temp_directory_path() /
                  ("replay_sweep_" + benchmark + ".rtrc"))
                     .string();
  }

  // Dump once: the recorded stream is placement/engine independent
  // (DESIGN.md section 16), so every cell replays the same file.
  const RunConfig dump_config = cell_config(
      benchmark, cells.front(), static_cast<std::uint32_t>(iterations),
      scale, /*trace=*/false);
  const double dump_begin = now_ms();
  const TraceDumpStats dump = dump_trace(dump_config, trace_file);
  const double dump_ms = now_ms() - dump_begin;
  const double mops = decode_mops(trace_file, dump.ops);
  std::cout << "Replay sweep: " << benchmark << ", " << cells.size()
            << " cell(s), iterations=" << iterations << "\n"
            << "trace: " << trace_file << " (" << dump.bytes << " bytes, "
            << dump.records << " records, " << dump.ops << " ops, "
            << dump.chunks << " chunk(s); dumped in "
            << fmt_double(dump_ms, 1) << " ms)\n"
            << "decode throughput: " << fmt_double(mops, 1) << " Mops/s\n\n";

  // Traced three-way equivalence (the replay-equivalence guarantee).
  std::size_t mismatches = 0;
  if (!no_verify) {
    for (const Cell& cell : cells) {
      const RunConfig traced = cell_config(
          benchmark, cell, static_cast<std::uint32_t>(iterations), scale,
          /*trace=*/true);
      std::string digest;
      std::string migrations;
      mismatches += verify_cell(traced, trace_file, &digest, &migrations);
      std::cout << "verify " << benchmark << ' ' << cell_label(cell)
                << ": direct == replay == pipelined (digest " << digest
                << ", migrations " << migrations << ")\n";
      if (!golden_file.empty()) {
        const auto goldens = load_goldens(golden_file);
        const auto it = goldens.find(benchmark + " " + cell_label(cell));
        if (it == goldens.end()) {
          ++mismatches;
          std::cerr << "GOLDEN MISSING: no entry for " << benchmark << ' '
                    << cell_label(cell) << " in " << golden_file << '\n';
        } else if (it->second.first != digest ||
                   it->second.second != migrations) {
          ++mismatches;
          std::cerr << "GOLDEN MISMATCH: " << benchmark << ' '
                    << cell_label(cell) << " got " << digest << '/'
                    << migrations << ", golden " << it->second.first << '/'
                    << it->second.second << '\n';
        } else {
          std::cout << "golden " << benchmark << ' ' << cell_label(cell)
                    << ": matches " << golden_file << '\n';
        }
      }
    }
    if (mismatches != 0) {
      std::cerr << mismatches << " replay-equivalence violation(s)\n";
      return 1;
    }
    std::cout << '\n';
  }
  if (smoke) {
    std::cout << "smoke: replay equivalence holds\n";
    return 0;
  }

  // Timing sweep: untraced, sequential, wall clock.
  std::vector<CellTiming> timings(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const RunConfig base = cell_config(
        benchmark, cells[i], static_cast<std::uint32_t>(iterations), scale,
        /*trace=*/false);
    for (int mode = 0; mode < 3; ++mode) {
      run_mode(base, trace_file, mode, &timings[i].ms[mode]);
    }
  }

  TextTable table({"cell", "direct ms", "replay ms", "pipelined ms",
                   "pipeline speedup"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double speedup =
        timings[i].ms[2] > 0.0 ? timings[i].ms[1] / timings[i].ms[2] : 0.0;
    table.add_row({cell_label(cells[i]), fmt_double(timings[i].ms[0], 1),
                   fmt_double(timings[i].ms[1], 1),
                   fmt_double(timings[i].ms[2], 1),
                   fmt_double(speedup, 2) + "x"});
  }
  table.print(std::cout);

  if (check_speedup) {
    if (std::thread::hardware_concurrency() < 2) {
      std::cout << "\ncheck-speedup: skipped (single-core host; the "
                   "producer thread cannot overlap the consumer)\n";
    } else {
      std::size_t violations = 0;
      for (std::size_t i = 0; i < cells.size(); ++i) {
        const double speedup =
            timings[i].ms[2] > 0.0 ? timings[i].ms[1] / timings[i].ms[2]
                                   : 0.0;
        if (speedup < 1.2) {
          ++violations;
          std::cerr << "SPEEDUP VIOLATION: " << cell_label(cells[i])
                    << " pipelined is only " << fmt_double(speedup, 2)
                    << "x over serial replay (need >= 1.2x)\n";
        }
      }
      if (violations != 0) {
        return 1;
      }
      std::cout << "\ncheck-speedup: pipelined >= 1.2x serial replay in "
                   "every cell\n";
    }
  }

  if (!json_dir.empty()) {
    write_json(json_dir, benchmark, cells, timings, mops,
               static_cast<std::uint32_t>(iterations));
  }
  return 0;
}
