// Figure 5: performance of the record--replay mechanism in NAS BT and
// SP with first-touch placement.
//
// Four bars per benchmark: ft-base, ft-IRIXmig, ft-upmlib (distribution
// only) and ft-recrep (distribution + record--replay around z_solve,
// with the critical-page cap set to the paper's n = 20). The striped
// segment of the ft-recrep bar is the non-overlapped migration overhead
// of replay() + undo().
//
// Paper claims: record--replay speeds the useful computation (up to 10%
// for BT's z_solve, marginal for SP) but its per-iteration migration
// overhead roughly cancels the gain at the benchmarks' natural phase
// granularity.
//
// Usage: fig5_recrep [--fast] [--iterations=N] [--jobs=N] [--trace=DIR]
#include <iostream>
#include <string>

#include "repro/common/env.hpp"
#include "repro/common/table.hpp"
#include "repro/harness/cli.hpp"
#include "repro/harness/figures.hpp"
#include "repro/harness/scheduler.hpp"

using namespace repro;
using namespace repro::harness;

int main(int argc, char** argv) {
  FigureOptions options;
  bool fast = false;
  Cli cli("fig5_recrep");
  cli.add_flag("fast", &fast, "trim the long benchmarks (REPRO_FAST)");
  cli.add_flag("no-fast-forward", &options.no_fast_forward,
               "simulate every iteration in full (disable the "
               "steady-state fast-forward)");
  cli.add_uint("iterations", &options.iterations_override,
               "override the per-benchmark iteration count", /*min=*/1);
  cli.add_uint("jobs", &options.jobs, "worker threads for the run matrix",
               /*min=*/1);
  cli.add_uint("cell-timeout-ms", &options.cell_timeout_ms,
               "abort any cell exceeding this wall-clock budget (ms; env "
               "REPRO_CELL_TIMEOUT_MS)",
               /*min=*/1);
  cli.add_string("trace", &options.trace_dir,
                 "record event traces and export them here");
  switch (cli.parse(argc, argv)) {
    case Cli::Status::kHelp:
      std::cout << cli.usage();
      return 0;
    case Cli::Status::kError:
      std::cerr << "error: " << cli.error() << "\n\n" << cli.usage();
      return 2;
    case Cli::Status::kOk:
      break;
  }
  if (fast) {
    Env::global().set("REPRO_FAST", "1");
  }

  std::cout << "Figure 5: record-replay in NAS BT and SP (first-touch "
               "placement, n = 20 critical pages)\n\n";

  for (const std::string bench : {"BT", "SP"}) {
    std::vector<RunConfig> configs;
    for (int variant = 0; variant < 4; ++variant) {
      RunConfig config = base_config(bench, options);
      config.kernel_migration = variant == 1;
      if (variant == 2) {
        config.upm_mode = nas::UpmMode::kDistribution;
      } else if (variant == 3) {
        config.upm_mode = nas::UpmMode::kRecordReplay;
        config.upm.max_critical_pages = 20;
      }
      configs.push_back(std::move(config));
    }
    std::vector<RunResult> results = run_experiments(configs, options.sweep());
    print_figure(std::cout,
                 "NAS " + bench + ", Class A (scaled), 16 processors",
                 results);

    TextTable table({"scheme", "time (s)", "z_solve (s)",
                     "recrep overhead (s)", "replay+undo migrations"});
    for (const RunResult& r : results) {
      table.add_row(
          {r.label, fmt_double(r.seconds(), 3),
           fmt_double(ns_to_seconds(r.phase_time("z_solve")), 3),
           fmt_double(ns_to_seconds(r.upm_stats.recrep_cost), 3),
           std::to_string(r.upm_stats.replay_migrations +
                          r.upm_stats.undo_migrations)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
