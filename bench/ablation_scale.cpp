// Machine-size ablation: the paper predicts that page placement (and
// hence data distribution) would matter more "on truly large-scale
// Origin2000 systems (e.g. with 128 processors or more), in which some
// remote memory accesses would have to cross up to 5 interconnection
// network hops" -- the authors could not get such a machine. The
// simulator can: sweep the node count and watch both the worst remote
// distance and the placement penalties grow.
//
// Usage: ablation_scale [--fast] [--benchmark=NAME]
#include <iostream>
#include <string>

#include "repro/common/env.hpp"
#include "repro/common/stats.hpp"
#include "repro/common/table.hpp"
#include "repro/harness/figures.hpp"
#include "repro/topology/topology.hpp"

using namespace repro;
using namespace repro::harness;

int main(int argc, char** argv) {
  FigureOptions options;
  std::string bench = "CG";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fast") {
      Env::global().set("REPRO_FAST", "1");
    } else if (arg == "--no-fast-forward") {
      options.no_fast_forward = true;
    } else if (arg.rfind("--benchmark=", 0) == 0) {
      bench = arg.substr(12);
    } else {
      std::cerr << "unknown argument: " << arg << '\n';
      return 1;
    }
  }

  std::cout << "Machine-size sweep on NAS " << bench
            << " (threads = processors = nodes; the workload's "
               "partition widens with the machine)\n\n";
  TextTable table({"nodes", "max hops", "remote:local", "rr slowdown",
                   "rand slowdown", "rr-upmlib slowdown"});
  for (const std::size_t nodes : {8ul, 16ul, 32ul, 64ul}) {
    memsys::MachineConfig machine;
    machine.num_nodes = nodes;
    const topo::FatHypercube topology(nodes);
    const memsys::LatencyModel latency(machine, topology);

    // Weak scaling: the problem grows with the machine so per-thread
    // working sets stay constant (otherwise the fixed Class A footprint
    // falls into the caches at 64 processors and placement stops
    // mattering -- a real effect, but not the one under study).
    const double scale = static_cast<double>(nodes) / 16.0;
    RunConfig ft = base_config(bench, options);
    ft.machine = machine;
    ft.workload.size_scale = scale;
    const RunResult ft_result = run_benchmark(ft);

    const auto slow = [&](const std::string& placement, bool upmlib) {
      RunConfig config = base_config(bench, options);
      config.machine = machine;
      config.workload.size_scale = scale;
      config.placement = placement;
      if (upmlib) {
        config.upm_mode = nas::UpmMode::kDistribution;
      }
      return slowdown(run_benchmark(config).seconds(),
                      ft_result.seconds());
    };
    table.add_row({std::to_string(nodes),
                   std::to_string(topology.max_hops()),
                   fmt_double(latency.worst_remote_to_local_ratio(), 2),
                   fmt_percent(slow("rr", false)),
                   fmt_percent(slow("rand", false)),
                   fmt_percent(slow("rr", true))});
  }
  table.print(std::cout);
  std::cout << "\nThe balanced-placement penalty grows with the machine "
               "diameter, and UPMlib keeps absorbing it: the paper's "
               "prediction, and its answer, at the scale the authors "
               "could not test.\n";
  return 0;
}
