// Table 2: statistics from executing the NAS benchmarks with different
// page placement schemes and the UPMlib migration engine.
//
// Two paper claims per benchmark x {rr, rand, wc}:
//  * the slowdown (vs. first-touch) over the LAST 75% of the iterations
//    is tiny (<= 2.7%, mostly < 1%): the engine reaches a stable,
//    first-touch-equivalent placement early;
//  * the overwhelming majority of migrations (78%-100%) happen after
//    the first iteration.
//
// Usage: table2_stats [--fast] [--iterations=N] [--jobs=N]
#include <iostream>
#include <string>

#include "repro/common/env.hpp"
#include "repro/common/stats.hpp"
#include "repro/common/table.hpp"
#include "repro/harness/figures.hpp"
#include "repro/harness/scheduler.hpp"

using namespace repro;
using namespace repro::harness;

int main(int argc, char** argv) {
  FigureOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fast") {
      Env::global().set("REPRO_FAST", "1");
    } else if (arg == "--no-fast-forward") {
      options.no_fast_forward = true;
    } else if (arg.rfind("--iterations=", 0) == 0) {
      options.iterations_override =
          static_cast<std::uint32_t>(std::stoul(arg.substr(13)));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = std::stoul(arg.substr(7));
    } else {
      std::cerr << "unknown argument: " << arg << '\n';
      return 1;
    }
  }

  std::cout << "Table 2: UPMlib engine statistics (slowdown over the "
               "last 75% of iterations\nvs ft-base, and the fraction of "
               "migrations performed by the first invocation)\n\n";

  TextTable table({"Benchmark", "rr last-75%", "rand last-75%",
                   "wc last-75%", "rr 1st-iter", "rand 1st-iter",
                   "wc 1st-iter"});

  for (const std::string& bench : nas::workload_names()) {
    // Cells: ft baseline first, then the three upmlib placements.
    std::vector<RunConfig> configs;
    configs.push_back(base_config(bench, options));
    for (const std::string placement : {"rr", "rand", "wc"}) {
      RunConfig config = base_config(bench, options);
      config.placement = placement;
      config.upm_mode = nas::UpmMode::kDistribution;
      configs.push_back(std::move(config));
    }
    const std::vector<RunResult> results =
        run_experiments(configs, options.sweep());
    const double ft_late =
        static_cast<double>(results[0].mean_iteration_last(0.75));

    std::vector<std::string> row = {bench};
    std::vector<std::string> fractions;
    for (std::size_t p = 1; p < results.size(); ++p) {
      const RunResult& r = results[p];
      row.push_back(fmt_percent(slowdown(
          static_cast<double>(r.mean_iteration_last(0.75)), ft_late)));
      fractions.push_back(fmt_double(
          r.upm_stats.first_invocation_fraction() * 100.0, 0) + "%");
    }
    row.insert(row.end(), fractions.begin(), fractions.end());
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nPaper: last-75% slowdowns all <= 2.7%; first-iteration "
               "migration fractions 78%-100%.\n";
  return 0;
}
