// Machine ablations: how the paper's conclusions depend on the
// architectural parameters the authors call out.
//
//  (a) remote:local latency ratio -- the paper credits the Origin2000's
//      ~2:1 ratio for the small rr/rand slowdowns and predicts bigger
//      effects on machines with higher ratios;
//  (b) interconnect topology -- bigger diameters magnify bad placement
//      (the paper's closing remark about >=128-processor systems);
//  (c) memory-module occupancy -- the contention component that makes
//      worst-case placement so much worse than its remote-access
//      fraction alone predicts.
//
// Usage: ablation_machine [--fast] [--benchmark=NAME]
#include <iostream>
#include <string>

#include "repro/common/env.hpp"
#include "repro/common/stats.hpp"
#include "repro/common/table.hpp"
#include "repro/harness/figures.hpp"

using namespace repro;
using namespace repro::harness;

namespace {

double slowdown_vs_ft(const std::string& bench, const FigureOptions& options,
                      const std::string& placement,
                      const memsys::MachineConfig& machine) {
  RunConfig config = base_config(bench, options);
  config.machine = machine;
  const RunResult ft = run_benchmark(config);
  config.placement = placement;
  const RunResult other = run_benchmark(config);
  return slowdown(other.seconds(), ft.seconds());
}

}  // namespace

int main(int argc, char** argv) {
  FigureOptions options;
  std::string bench = "CG";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fast") {
      Env::global().set("REPRO_FAST", "1");
    } else if (arg == "--no-fast-forward") {
      options.no_fast_forward = true;
    } else if (arg.rfind("--benchmark=", 0) == 0) {
      bench = arg.substr(12);
    } else {
      std::cerr << "unknown argument: " << arg << '\n';
      return 1;
    }
  }

  std::cout << "Machine ablations on NAS " << bench << "\n\n";

  {
    // (a) scale the remote part of the latency ladder.
    TextTable table({"remote:local ratio", "rr slowdown", "wc slowdown"});
    for (const double factor : {0.5, 1.0, 2.0, 4.0}) {
      memsys::MachineConfig machine;
      for (std::size_t h = 1; h < machine.mem_latency_ns.size(); ++h) {
        const double base = machine.mem_latency_ns.front();
        machine.mem_latency_ns[h] =
            base + (machine.mem_latency_ns[h] - base) * factor;
      }
      machine.extra_hop_latency_ns *= factor;
      const double ratio = machine.mem_latency_ns.back() /
                           machine.mem_latency_ns.front();
      table.add_row(
          {fmt_double(ratio, 2),
           fmt_percent(slowdown_vs_ft(bench, options, "rr", machine)),
           fmt_percent(slowdown_vs_ft(bench, options, "wc", machine))});
    }
    std::cout << "(a) latency-ratio sweep (paper: the low 2:1 ratio is "
                 "why balanced placements are cheap)\n";
    table.print(std::cout);
    std::cout << '\n';
  }

  {
    // (b) topology sweep.
    TextTable table({"topology", "max hops", "rr slowdown"});
    for (const std::string topology : {"crossbar", "fat-hypercube",
                                       "ring"}) {
      memsys::MachineConfig machine;
      machine.topology = topology;
      const auto topo = topo::make_topology(topology, machine.num_nodes);
      table.add_row(
          {topology, std::to_string(topo->max_hops()),
           fmt_percent(slowdown_vs_ft(bench, options, "rr", machine))});
    }
    std::cout << "(b) topology sweep (bigger diameter -> bad placement "
                 "hurts more)\n";
    table.print(std::cout);
    std::cout << '\n';
  }

  {
    // (c) memory occupancy sweep.
    TextTable table({"occupancy (ns/line)", "rr slowdown", "wc slowdown"});
    for (const double occupancy : {25.0, 100.0, 400.0}) {
      memsys::MachineConfig machine;
      machine.mem_occupancy_ns = occupancy;
      table.add_row(
          {fmt_double(occupancy, 0),
           fmt_percent(slowdown_vs_ft(bench, options, "rr", machine)),
           fmt_percent(slowdown_vs_ft(bench, options, "wc", machine))});
    }
    std::cout << "(c) memory-occupancy sweep (contention is what makes "
                 "worst-case placement catastrophic)\n";
    table.print(std::cout);
  }
  return 0;
}
