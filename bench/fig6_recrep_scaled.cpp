// Figure 6: record--replay in the synthetically scaled NAS BT.
//
// The paper encloses each solver function in a sequential loop with 4
// repetitions (expanding z_solve from ~130 ms to ~520 ms) WITHOUT
// changing the memory access pattern, so the fixed per-iteration
// migration overhead of record--replay amortizes over four times more
// phase computation. The claim: with scaling, ft-recrep beats
// ft-upmlib (paper: by ~5%), reversing the Figure 5 outcome.
//
// Usage: fig6_recrep_scaled [--fast] [--iterations=N] [--scale=K]
//                           [--jobs=N] [--trace=DIR]
#include <iostream>
#include <string>

#include "repro/common/env.hpp"
#include "repro/common/stats.hpp"
#include "repro/common/table.hpp"
#include "repro/harness/cli.hpp"
#include "repro/harness/figures.hpp"
#include "repro/harness/scheduler.hpp"

using namespace repro;
using namespace repro::harness;

int main(int argc, char** argv) {
  FigureOptions options;
  std::uint32_t scale = 4;
  bool fast = false;
  Cli cli("fig6_recrep_scaled");
  cli.add_flag("fast", &fast, "trim the long benchmarks (REPRO_FAST)");
  cli.add_flag("no-fast-forward", &options.no_fast_forward,
               "simulate every iteration in full (disable the "
               "steady-state fast-forward)");
  cli.add_uint("iterations", &options.iterations_override,
               "override the per-benchmark iteration count", /*min=*/1);
  cli.add_uint("scale", &scale, "solver-body repetition factor", /*min=*/1);
  cli.add_uint("jobs", &options.jobs, "worker threads for the run matrix",
               /*min=*/1);
  cli.add_uint("cell-timeout-ms", &options.cell_timeout_ms,
               "abort any cell exceeding this wall-clock budget (ms; env "
               "REPRO_CELL_TIMEOUT_MS)",
               /*min=*/1);
  cli.add_string("trace", &options.trace_dir,
                 "record event traces and export them here");
  switch (cli.parse(argc, argv)) {
    case Cli::Status::kHelp:
      std::cout << cli.usage();
      return 0;
    case Cli::Status::kError:
      std::cerr << "error: " << cli.error() << "\n\n" << cli.usage();
      return 2;
    case Cli::Status::kOk:
      break;
  }
  if (fast) {
    Env::global().set("REPRO_FAST", "1");
  }

  std::cout << "Figure 6: record-replay in the synthetically scaled BT "
               "(each solver body x" << scale << ")\n\n";

  std::vector<RunConfig> configs;
  for (int variant = 0; variant < 4; ++variant) {
    RunConfig config = base_config("BT", options);
    config.compute_scale = scale;
    config.kernel_migration = variant == 1;
    if (variant == 2) {
      config.upm_mode = nas::UpmMode::kDistribution;
    } else if (variant == 3) {
      config.upm_mode = nas::UpmMode::kRecordReplay;
      config.upm.max_critical_pages = 20;
    }
    configs.push_back(std::move(config));
  }
  std::vector<RunResult> results = run_experiments(configs, options.sweep());
  print_figure(std::cout, "NAS BT (scaled x" + std::to_string(scale) +
                              "), 16 processors",
               results);

  TextTable table({"scheme", "time (s)", "z_solve (s)",
                   "recrep overhead (s)"});
  for (const RunResult& r : results) {
    table.add_row({r.label, fmt_double(r.seconds(), 3),
                   fmt_double(ns_to_seconds(r.phase_time("z_solve")), 3),
                   fmt_double(ns_to_seconds(r.upm_stats.recrep_cost), 3)});
  }
  table.print(std::cout);

  const RunResult& dist = find_result(results, "ft-upmlib");
  const RunResult& recrep = find_result(results, "ft-recrep");
  std::cout << "\nft-recrep vs ft-upmlib: "
            << fmt_percent(slowdown(recrep.seconds(), dist.seconds()))
            << " (paper: about -5% -- record-replay wins once the phase "
               "is long enough)\n";
  return 0;
}
