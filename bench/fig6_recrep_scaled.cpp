// Figure 6: record--replay in the synthetically scaled NAS BT.
//
// The paper encloses each solver function in a sequential loop with 4
// repetitions (expanding z_solve from ~130 ms to ~520 ms) WITHOUT
// changing the memory access pattern, so the fixed per-iteration
// migration overhead of record--replay amortizes over four times more
// phase computation. The claim: with scaling, ft-recrep beats
// ft-upmlib (paper: by ~5%), reversing the Figure 5 outcome.
//
// Usage: fig6_recrep_scaled [--fast] [--iterations=N] [--scale=K]
//                           [--jobs=N]
#include <iostream>
#include <string>

#include "repro/common/env.hpp"
#include "repro/common/stats.hpp"
#include "repro/common/table.hpp"
#include "repro/harness/figures.hpp"
#include "repro/harness/scheduler.hpp"

using namespace repro;
using namespace repro::harness;

int main(int argc, char** argv) {
  FigureOptions options;
  std::uint32_t scale = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fast") {
      Env::global().set("REPRO_FAST", "1");
    } else if (arg.rfind("--iterations=", 0) == 0) {
      options.iterations_override =
          static_cast<std::uint32_t>(std::stoul(arg.substr(13)));
    } else if (arg.rfind("--scale=", 0) == 0) {
      scale = static_cast<std::uint32_t>(std::stoul(arg.substr(8)));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = std::stoul(arg.substr(7));
    } else {
      std::cerr << "unknown argument: " << arg << '\n';
      return 1;
    }
  }

  std::cout << "Figure 6: record-replay in the synthetically scaled BT "
               "(each solver body x" << scale << ")\n\n";

  std::vector<RunConfig> configs;
  for (int variant = 0; variant < 4; ++variant) {
    RunConfig config = base_config("BT", options);
    config.compute_scale = scale;
    config.kernel_migration = variant == 1;
    if (variant == 2) {
      config.upm_mode = nas::UpmMode::kDistribution;
    } else if (variant == 3) {
      config.upm_mode = nas::UpmMode::kRecordReplay;
      config.upm.max_critical_pages = 20;
    }
    configs.push_back(std::move(config));
  }
  std::vector<RunResult> results = run_experiments(configs, options.jobs);
  print_figure(std::cout, "NAS BT (scaled x" + std::to_string(scale) +
                              "), 16 processors",
               results);

  TextTable table({"scheme", "time (s)", "z_solve (s)",
                   "recrep overhead (s)"});
  for (const RunResult& r : results) {
    table.add_row({r.label, fmt_double(r.seconds(), 3),
                   fmt_double(ns_to_seconds(r.phase_time("z_solve")), 3),
                   fmt_double(ns_to_seconds(r.upm_stats.recrep_cost), 3)});
  }
  table.print(std::cout);

  const RunResult& dist = find_result(results, "ft-upmlib");
  const RunResult& recrep = find_result(results, "ft-recrep");
  std::cout << "\nft-recrep vs ft-upmlib: "
            << fmt_percent(slowdown(recrep.seconds(), dist.seconds()))
            << " (paper: about -5% -- record-replay wins once the phase "
               "is long enough)\n";
  return 0;
}
