// Figure 1: impact of page placement on the OpenMP NAS benchmarks.
//
// For each benchmark (BT, SP, CG, MG, FT) runs the four page-placement
// schemes {first-touch, round-robin, random, worst-case} with and
// without the IRIX-style kernel migration daemon, on the simulated
// 16-processor Origin2000, and prints a paper-style bar chart plus a
// summary table.
//
// Paper claims being reproduced (shapes, not absolute seconds):
//  * wc incurs 50%-248% slowdown except BT (24%); average ~90%;
//  * rr and rand incur modest slowdowns (8%-45%);
//  * the kernel engine recovers only part of the gap (avg slowdowns
//    drop to ~16% / 17% / 61%) and is ~neutral-to-harmful with ft
//    (harmful for FT: page-level false sharing).
//
// Usage: fig1_placement [--fast] [--iterations=N] [--benchmark=NAME]
//                       [--jobs=N] [--csv=PATH] [--json=DIR] [--trace=DIR]
//
// --json=DIR writes one BENCH_fig1_<benchmark>.json file per benchmark
// into DIR (machine-readable mirror of the summary tables);
// --trace=DIR additionally records every run's event trace and exports
// TRACE_*.{trace,chrome.json} files there (see DESIGN.md §10).
#include <iostream>
#include <string>

#include "repro/common/env.hpp"
#include "repro/common/stats.hpp"
#include "repro/common/table.hpp"
#include "repro/harness/cli.hpp"
#include "repro/harness/figures.hpp"
#include "repro/harness/json.hpp"

using namespace repro;
using namespace repro::harness;

int main(int argc, char** argv) {
  FigureOptions options;
  bool fast = false;
  std::string benchmark;
  std::string csv_path;
  std::string json_path;
  Cli cli("fig1_placement");
  cli.add_flag("fast", &fast, "trim the long benchmarks (REPRO_FAST)");
  cli.add_flag("no-fast-forward", &options.no_fast_forward,
               "simulate every iteration in full (disable the "
               "steady-state fast-forward)");
  cli.add_uint("iterations", &options.iterations_override,
               "override the per-benchmark iteration count", /*min=*/1);
  cli.add_string("benchmark", &benchmark, "run a single benchmark");
  cli.add_uint("jobs", &options.jobs, "worker threads for the run matrix",
               /*min=*/1);
  cli.add_uint("cell-timeout-ms", &options.cell_timeout_ms,
               "abort any cell exceeding this wall-clock budget (ms; env "
               "REPRO_CELL_TIMEOUT_MS)",
               /*min=*/1);
  cli.add_string("csv", &csv_path, "append results to this CSV file");
  cli.add_string("json", &json_path, "write BENCH_*.json files here");
  cli.add_string("trace", &options.trace_dir,
                 "record event traces and export them here");
  switch (cli.parse(argc, argv)) {
    case Cli::Status::kHelp:
      std::cout << cli.usage();
      return 0;
    case Cli::Status::kError:
      std::cerr << "error: " << cli.error() << "\n\n" << cli.usage();
      return 2;
    case Cli::Status::kOk:
      break;
  }
  if (fast) {
    Env::global().set("REPRO_FAST", "1");
  }
  std::vector<std::string> benchmarks =
      benchmark.empty() ? nas::workload_names()
                        : std::vector<std::string>{benchmark};

  std::cout << "Figure 1: impact of page placement on the NAS benchmarks "
               "(simulated 16-proc Origin2000)\n\n";

  std::vector<std::vector<RunResult>> all;
  for (const std::string& bench : benchmarks) {
    std::vector<RunResult> results = run_placement_matrix(bench, options);
    print_figure(std::cout,
                 "NAS " + bench + ", Class A (scaled), 16 processors",
                 results);
    results_table(results).print(std::cout);
    std::cout << '\n';
    if (!csv_path.empty()) {
      append_csv(csv_path, bench, results);
    }
    if (!json_path.empty()) {
      write_results_json(json_path + "/BENCH_fig1_" + bench + ".json",
                         "fig1_placement/" + bench, results);
    }
    all.push_back(std::move(results));
  }

  if (benchmarks.size() > 1) {
    TextTable summary({"scheme", "mean slowdown vs ft-base", "paper"});
    summary.add_row({"rr-base",
                     fmt_percent(mean_slowdown(all, "rr-base", "ft-base")),
                     "~+22%"});
    summary.add_row(
        {"rand-base",
         fmt_percent(mean_slowdown(all, "rand-base", "ft-base")), "~+23%"});
    summary.add_row({"wc-base",
                     fmt_percent(mean_slowdown(all, "wc-base", "ft-base")),
                     "~+90%"});
    summary.add_row(
        {"rr-IRIXmig",
         fmt_percent(mean_slowdown(all, "rr-IRIXmig", "ft-base")), "~+16%"});
    summary.add_row(
        {"rand-IRIXmig",
         fmt_percent(mean_slowdown(all, "rand-IRIXmig", "ft-base")),
         "~+17%"});
    summary.add_row(
        {"wc-IRIXmig",
         fmt_percent(mean_slowdown(all, "wc-IRIXmig", "ft-base")), "~+61%"});
    std::cout << "Average across benchmarks:\n";
    summary.print(std::cout);
  }
  return 0;
}
