// Service sweep: throughput of the sweep daemon, cold cache vs warm.
//
// Starts an in-process SweepDaemon on a temporary socket, submits the
// same 6-cell grid twice through SweepClient, and reports cells/second
// for the cold pass (every cell simulated by a forked worker) and the
// warm pass (every cell served from the memoized result cache). The
// warm/cold ratio is the headline number: it is what a long-running
// daemon buys a CI fleet that keeps re-requesting overlapping grids.
//
// Correctness ride-along: the warm digests must be byte-identical to
// the cold ones (the cache's determinism contract), or the bench exits
// nonzero.
//
// Usage: service_sweep [--benchmark=CG] [--iterations=N] [--scale=X]
//                      [--workers=N] [--json=DIR]
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "repro/common/table.hpp"
#include "repro/harness/atomic_file.hpp"
#include "repro/harness/cli.hpp"
#include "repro/service/client.hpp"
#include "repro/service/daemon.hpp"

using namespace repro;
using namespace repro::service;

namespace {

double wall_ms(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using repro::harness::Cli;
  std::string benchmark = "CG";
  std::uint32_t iterations = 3;
  double scale = 0.25;
  std::size_t workers = 3;
  std::string json_dir;

  Cli cli("service_sweep");
  cli.add_string("benchmark", &benchmark, "benchmark for the 6-cell grid");
  cli.add_uint("iterations", &iterations, "timed iterations per cell",
               /*min=*/1);
  cli.add_double("scale", &scale, "problem size multiplier");
  cli.add_uint("workers", &workers, "daemon worker processes", /*min=*/1,
               /*max=*/64);
  cli.add_string("json", &json_dir, "write BENCH_service_sweep.json here");
  switch (cli.parse(argc, argv)) {
    case Cli::Status::kHelp:
      std::cout << cli.usage();
      return 0;
    case Cli::Status::kError:
      std::cerr << "error: " << cli.error() << "\n\n" << cli.usage();
      return 2;
    case Cli::Status::kOk:
      break;
  }

  const std::string base = std::filesystem::temp_directory_path() /
                           ("repro_service_sweep_" + std::to_string(getpid()));
  std::filesystem::create_directories(base);
  DaemonConfig config;
  config.socket_path = base + "/sweepd.sock";
  config.workers = workers;
  config.cache.dir = base + "/cache";
  SweepDaemon daemon(config);
  std::thread daemon_thread([&daemon] { daemon.run(); });

  SweepRequest request;
  for (const std::string placement : {"ft", "rr", "wc"}) {
    for (const std::string upm : {"off", "dist"}) {
      CellSpec spec;
      spec.benchmark = benchmark;
      spec.placement = placement;
      spec.upm = upm;
      spec.iterations = iterations;
      spec.size_scale = scale;
      request.cells.push_back(std::move(spec));
    }
  }

  SweepClient client(config.socket_path);
  int exit_code = 0;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  std::size_t warm_hits = 0;
  {
    const auto t0 = std::chrono::steady_clock::now();
    const SweepReply cold = client.submit(request);
    cold_ms = wall_ms(t0);
    const auto t1 = std::chrono::steady_clock::now();
    const SweepReply warm = client.submit(request);
    warm_ms = wall_ms(t1);
    warm_hits = warm.cache_hits;
    if (!cold.ok() || !warm.ok()) {
      std::cerr << "service_sweep: request failed: "
                << (cold.ok() ? warm.error : cold.error) << "\n";
      exit_code = 1;
    } else {
      for (std::size_t i = 0; i < request.cells.size(); ++i) {
        if (cold.cells[i].result.trace_digest !=
            warm.cells[i].result.trace_digest) {
          std::cerr << "service_sweep: warm digest diverged from cold for "
                    << warm.cells[i].result.label << "\n";
          exit_code = 1;
        }
      }
      if (warm.cache_hits != request.cells.size()) {
        std::cerr << "service_sweep: expected every warm cell from cache, got "
                  << warm.cache_hits << "/" << request.cells.size() << "\n";
        exit_code = 1;
      }
    }
  }
  if (!client.shutdown_daemon()) {
    daemon.request_shutdown();
  }
  daemon_thread.join();

  const double n = static_cast<double>(request.cells.size());
  TextTable table({"pass", "cells", "wall (ms)", "cells/s", "cache hits"});
  std::ostringstream cold_rate;
  std::ostringstream warm_rate;
  cold_rate.precision(1);
  warm_rate.precision(1);
  cold_rate << std::fixed << n / (cold_ms / 1000.0);
  warm_rate << std::fixed << n / (warm_ms / 1000.0);
  table.add_row({"cold", std::to_string(request.cells.size()),
                 std::to_string(static_cast<long>(cold_ms)), cold_rate.str(),
                 "0"});
  table.add_row({"warm", std::to_string(request.cells.size()),
                 std::to_string(static_cast<long>(warm_ms)), warm_rate.str(),
                 std::to_string(warm_hits)});
  std::cout << "Service sweep: " << benchmark << " 6-cell grid, " << workers
            << " workers\n\n";
  table.print(std::cout);
  if (warm_ms > 0.0) {
    std::cout << "\nwarm/cold speedup: "
              << static_cast<long>(cold_ms / std::max(warm_ms, 0.001)) << "x\n";
  }

  if (!json_dir.empty()) {
    std::ostringstream js;
    js << "{\n  \"bench\": \"service_sweep\",\n  \"benchmarks\": [\n";
    js << "    {\"name\": \"ServiceSweep/" << benchmark
       << "/cold\", \"real_time\": " << cold_ms
       << ", \"time_unit\": \"ms\", \"cells\": " << request.cells.size()
       << "},\n";
    js << "    {\"name\": \"ServiceSweep/" << benchmark
       << "/warm\", \"real_time\": " << warm_ms
       << ", \"time_unit\": \"ms\", \"cells\": " << request.cells.size()
       << ", \"cache_hits\": " << warm_hits << "}\n";
    js << "  ]\n}\n";
    harness::atomic_write_file(json_dir + "/BENCH_service_sweep.json",
                               js.str());
  }

  std::error_code ec;
  std::filesystem::remove_all(base, ec);
  return exit_code;
}
