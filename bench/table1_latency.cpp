// Table 1: access latency to the different levels of the Origin2000
// memory hierarchy, measured on the simulated machine with a pointer-
// chase-style probe (single-line accesses against cold or warm caches).
//
// Paper reference values (16-node Origin2000, contented latency, ns):
//   L1 cache 5.5 | L2 cache 56.9 | local 329 | 1 hop 564 | 2 hops 759 |
//   3 hops 862.
//
// --topology extends the ladder past the paper's 3 hops: the latency
// model extrapolates extra_hop_latency_ns per hop beyond the Table-1
// calibration points, so e.g. hier:8x8x8 prints rows for every realized
// distance of a 512-node machine.
#include <iostream>
#include <stdexcept>

#include "repro/common/table.hpp"
#include "repro/harness/cli.hpp"
#include "repro/omp/machine.hpp"

namespace {

using namespace repro;

/// Measures the average elapsed time of single-line accesses from
/// processor 0 to pages homed on `target`, with caches flushed before
/// every access (a cold-miss probe).
double probe_memory(omp::Machine& machine, NodeId target,
                    std::uint64_t base_page, Ns& now) {
  constexpr int kProbes = 64;
  memsys::MemorySystem& memory = machine.memory();
  // Fault the pages onto the target node via an explicit placement.
  for (int i = 0; i < kProbes; ++i) {
    const VPage page(base_page + static_cast<std::uint64_t>(i));
    now += memory.access(now, {ProcId(0), page, 1, true}).elapsed;
    if (machine.kernel().home_of(page) != target) {
      machine.kernel().migrate_page(page, target);
    }
  }
  Ns total = 0;
  for (int i = 0; i < kProbes; ++i) {
    const VPage page(base_page + static_cast<std::uint64_t>(i));
    memory.flush_page(page);
    const auto r = memory.access(now, {ProcId(0), page, 1, false});
    now += r.elapsed;
    total += r.elapsed;
  }
  return static_cast<double>(total) / kProbes;
}

}  // namespace

int main(int argc, char** argv) {
  std::string topology_spec;
  harness::Cli cli("table1_latency");
  cli.add_string("topology", &topology_spec,
                 "machine topology (fat-hypercube[:N] | ring[:N] | "
                 "crossbar[:N] | hier:AxBxC[@c,...]); default: the paper's "
                 "16-node fat hypercube");
  switch (cli.parse(argc, argv)) {
    case harness::Cli::Status::kHelp:
      std::cout << cli.usage();
      return 0;
    case harness::Cli::Status::kError:
      std::cerr << "error: " << cli.error() << "\n\n" << cli.usage();
      return 2;
    case harness::Cli::Status::kOk:
      break;
  }

  memsys::MachineConfig config;  // 16-node Origin2000 defaults
  if (!topology_spec.empty()) {
    try {
      const topo::ParsedTopology parsed =
          topo::parse_topology(topology_spec, config.num_nodes);
      config.topology = parsed.name;
      config.num_nodes = parsed.num_nodes;
    } catch (const std::invalid_argument& e) {
      std::cerr << "error: " << e.what() << "\n\n" << cli.usage();
      return 2;
    }
  }
  auto machine = omp::Machine::create(config);
  // Pin placement so the probe's first touch is local to processor 0.
  machine->set_placement("ft");

  const topo::Topology& topology = machine->topology();
  const NodeId origin(0);

  TextTable table({"Level", "Distance in hops", "Paper (ns)",
                   "Simulated (ns)"});
  table.add_row({"L1 cache", "0", "5.5",
                 fmt_double(config.l1_latency_ns, 1)});
  table.add_row({"L2 cache", "0", "56.9",
                 fmt_double(config.l2_latency_ns, 1)});

  const char* paper[] = {"329", "564", "759", "862"};
  std::uint64_t base_page = 0;
  Ns now = 0;
  for (unsigned hops = 0; hops <= topology.max_hops(); ++hops) {
    // Find a node at this distance from node 0.
    NodeId target = origin;
    bool found = false;
    for (std::uint32_t n = 0; n < config.num_nodes; ++n) {
      if (topology.hops(origin, NodeId(n)) == hops) {
        target = NodeId(n);
        found = true;
        break;
      }
    }
    if (!found) {
      continue;
    }
    const double measured = probe_memory(*machine, target, base_page, now);
    base_page += 1024;
    const std::string level =
        hops == 0 ? "local memory" : "remote memory";
    // Paper values exist for the 16-node ladder only; deeper distances
    // (bigger machines, hierarchical trees) are the model's
    // extrapolation: ladder end + extra_hop_latency_ns per extra hop.
    table.add_row({level, std::to_string(hops),
                   hops < 4 ? paper[hops] : "-",
                   fmt_double(measured, 1)});
  }

  std::cout << "Table 1: Access latency to the levels of the simulated "
            << topology.name() << " memory hierarchy ("
            << config.num_nodes << " nodes)\n";
  table.print(std::cout);
  std::cout << "\nremote:local ratio at max distance = "
            << fmt_double(machine->memory()
                              .latency()
                              .worst_remote_to_local_ratio(),
                          2)
            << " (paper: between 2:1 and 3:1)\n";
  return 0;
}
