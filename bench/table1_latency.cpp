// Table 1: access latency to the different levels of the Origin2000
// memory hierarchy, measured on the simulated machine with a pointer-
// chase-style probe (single-line accesses against cold or warm caches).
//
// Paper reference values (16-node Origin2000, contented latency, ns):
//   L1 cache 5.5 | L2 cache 56.9 | local 329 | 1 hop 564 | 2 hops 759 |
//   3 hops 862.
#include <iostream>

#include "repro/common/table.hpp"
#include "repro/omp/machine.hpp"

namespace {

using namespace repro;

/// Measures the average elapsed time of single-line accesses from
/// processor 0 to pages homed on `target`, with caches flushed before
/// every access (a cold-miss probe).
double probe_memory(omp::Machine& machine, NodeId target,
                    std::uint64_t base_page, Ns& now) {
  constexpr int kProbes = 64;
  memsys::MemorySystem& memory = machine.memory();
  // Fault the pages onto the target node via an explicit placement.
  for (int i = 0; i < kProbes; ++i) {
    const VPage page(base_page + static_cast<std::uint64_t>(i));
    now += memory.access(now, {ProcId(0), page, 1, true}).elapsed;
    if (machine.kernel().home_of(page) != target) {
      machine.kernel().migrate_page(page, target);
    }
  }
  Ns total = 0;
  for (int i = 0; i < kProbes; ++i) {
    const VPage page(base_page + static_cast<std::uint64_t>(i));
    memory.flush_page(page);
    const auto r = memory.access(now, {ProcId(0), page, 1, false});
    now += r.elapsed;
    total += r.elapsed;
  }
  return static_cast<double>(total) / kProbes;
}

}  // namespace

int main() {
  memsys::MachineConfig config;  // 16-node Origin2000 defaults
  auto machine = omp::Machine::create(config);
  // Pin placement so the probe's first touch is local to processor 0.
  machine->set_placement("ft");

  const topo::Topology& topology = machine->topology();
  const NodeId origin(0);

  TextTable table({"Level", "Distance in hops", "Paper (ns)",
                   "Simulated (ns)"});
  table.add_row({"L1 cache", "0", "5.5",
                 fmt_double(config.l1_latency_ns, 1)});
  table.add_row({"L2 cache", "0", "56.9",
                 fmt_double(config.l2_latency_ns, 1)});

  const char* paper[] = {"329", "564", "759", "862"};
  std::uint64_t base_page = 0;
  Ns now = 0;
  for (unsigned hops = 0; hops <= topology.max_hops(); ++hops) {
    // Find a node at this distance from node 0.
    NodeId target = origin;
    bool found = false;
    for (std::uint32_t n = 0; n < config.num_nodes; ++n) {
      if (topology.hops(origin, NodeId(n)) == hops) {
        target = NodeId(n);
        found = true;
        break;
      }
    }
    if (!found) {
      continue;
    }
    const double measured = probe_memory(*machine, target, base_page, now);
    base_page += 1024;
    const std::string level =
        hops == 0 ? "local memory" : "remote memory";
    table.add_row({level, std::to_string(hops),
                   hops < 4 ? paper[hops] : "-",
                   fmt_double(measured, 1)});
  }

  std::cout << "Table 1: Access latency to the levels of the simulated "
               "Origin2000 memory hierarchy\n";
  table.print(std::cout);
  std::cout << "\nremote:local ratio at max distance = "
            << fmt_double(machine->memory()
                              .latency()
                              .worst_remote_to_local_ratio(),
                          2)
            << " (paper: between 2:1 and 3:1)\n";
  return 0;
}
