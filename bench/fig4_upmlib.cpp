// Figure 4: performance of the UPMlib page-migration runtime with
// different page placement schemes.
//
// Extends Figure 1's matrix with the {ft,rr,rand,wc}-upmlib bars: the
// iterative distribution mechanism (Section 3.2) reads the hardware
// counters after the first iteration and migrates every page that
// satisfies the competitive criterion, self-deactivating when done.
//
// Paper claims being reproduced:
//  * with UPMlib the slowdown vs. first-touch drops to ~5% (rr),
//    ~6% (rand) and ~14% (wc) on average;
//  * with first-touch itself UPMlib gains 6%-22% on all codes but CG
//    (first-touch is already optimal for CG).
//
// Usage: fig4_upmlib [--fast] [--iterations=N] [--benchmark=NAME]
//                    [--jobs=N] [--csv=PATH] [--json=DIR] [--trace=DIR]
#include <iostream>
#include <string>

#include "repro/common/env.hpp"
#include "repro/common/stats.hpp"
#include "repro/common/table.hpp"
#include "repro/harness/cli.hpp"
#include "repro/harness/figures.hpp"
#include "repro/harness/json.hpp"

using namespace repro;
using namespace repro::harness;

int main(int argc, char** argv) {
  FigureOptions options;
  bool fast = false;
  std::string benchmark;
  std::string csv_path;
  std::string json_path;
  Cli cli("fig4_upmlib");
  cli.add_flag("fast", &fast, "trim the long benchmarks (REPRO_FAST)");
  cli.add_flag("no-fast-forward", &options.no_fast_forward,
               "simulate every iteration in full (disable the "
               "steady-state fast-forward)");
  cli.add_uint("iterations", &options.iterations_override,
               "override the per-benchmark iteration count", /*min=*/1);
  cli.add_string("benchmark", &benchmark, "run a single benchmark");
  cli.add_uint("jobs", &options.jobs, "worker threads for the run matrix",
               /*min=*/1);
  cli.add_uint("cell-timeout-ms", &options.cell_timeout_ms,
               "abort any cell exceeding this wall-clock budget (ms; env "
               "REPRO_CELL_TIMEOUT_MS)",
               /*min=*/1);
  cli.add_string("csv", &csv_path, "append results to this CSV file");
  cli.add_string("json", &json_path, "write BENCH_*.json files here");
  cli.add_string("trace", &options.trace_dir,
                 "record event traces and export them here");
  switch (cli.parse(argc, argv)) {
    case Cli::Status::kHelp:
      std::cout << cli.usage();
      return 0;
    case Cli::Status::kError:
      std::cerr << "error: " << cli.error() << "\n\n" << cli.usage();
      return 2;
    case Cli::Status::kOk:
      break;
  }
  if (fast) {
    Env::global().set("REPRO_FAST", "1");
  }
  std::vector<std::string> benchmarks =
      benchmark.empty() ? nas::workload_names()
                        : std::vector<std::string>{benchmark};

  std::cout << "Figure 4: UPMlib distribution mode under the four page "
               "placement schemes (simulated 16-proc Origin2000)\n\n";

  std::vector<std::vector<RunResult>> all;
  for (const std::string& bench : benchmarks) {
    std::vector<RunResult> results = run_placement_matrix(bench, options);
    std::vector<RunResult> upm = run_upmlib_row(bench, options);
    // Interleave paper-style: ft-base, ft-IRIXmig, ft-upmlib, rr-base, ...
    std::vector<RunResult> merged;
    for (std::size_t p = 0; p < 4; ++p) {
      merged.push_back(results[2 * p]);
      merged.push_back(results[2 * p + 1]);
      merged.push_back(upm[p]);
    }
    print_figure(std::cout,
                 "NAS " + bench + ", Class A (scaled), 16 processors",
                 merged);
    results_table(merged).print(std::cout);
    std::cout << '\n';
    if (!csv_path.empty()) {
      append_csv(csv_path, bench, merged);
    }
    if (!json_path.empty()) {
      write_results_json(json_path + "/BENCH_fig4_" + bench + ".json",
                         "fig4_upmlib/" + bench, merged);
    }
    all.push_back(std::move(merged));
  }

  if (benchmarks.size() > 1) {
    TextTable summary({"scheme", "mean slowdown vs ft-base", "paper"});
    summary.add_row({"ft-upmlib",
                     fmt_percent(mean_slowdown(all, "ft-upmlib", "ft-base")),
                     "-6% .. -22% (except CG ~0)"});
    summary.add_row({"rr-upmlib",
                     fmt_percent(mean_slowdown(all, "rr-upmlib", "ft-base")),
                     "~+5%"});
    summary.add_row(
        {"rand-upmlib",
         fmt_percent(mean_slowdown(all, "rand-upmlib", "ft-base")), "~+6%"});
    summary.add_row({"wc-upmlib",
                     fmt_percent(mean_slowdown(all, "wc-upmlib", "ft-base")),
                     "~+14%"});
    std::cout << "Average across benchmarks:\n";
    summary.print(std::cout);
  }
  return 0;
}
