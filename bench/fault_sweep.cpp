// Fault sweep: UPMlib convergence and graceful degradation under
// deterministic fault injection (see src/fault and DESIGN.md "Fault
// injection & graceful degradation").
//
// The paper's experiments run on a dedicated machine. This bench asks
// what happens off that happy path: reference counters get corrupted,
// page moves come back BUSY, nodes stall and threads lose timeslices
// -- does the adaptive engine still converge, and how much of its gain
// survives? The matrix is {benchmarks} x {fault rates} x {ft,rr,wc} x
// {base,upmlib}. Rate-0 cells carry an empty FaultPlan, so they are
// byte-identical to fig4_upmlib's cells (same configs, no injector) --
// the sweep's own built-in control group.
//
// Fault cells enable UPMlib's counter hysteresis (two consecutive
// qualifying passes before a migration) so one corrupted counter read
// cannot trigger a migration storm; fault-free cells keep the paper's
// immediate-migration behaviour.
//
// Usage: fault_sweep [--fast] [--iterations=N] [--benchmark=NAME]
//                    [--rates=0,0.01,0.05] [--fault-seed=S] [--jobs=N]
//                    [--json=DIR] [--trace=DIR] [--cell-timeout-ms=MS]
//                    [--cell-retries=N] [--checkpoint-dir=DIR]
#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "repro/common/env.hpp"
#include "repro/common/stats.hpp"
#include "repro/common/table.hpp"
#include "repro/harness/cli.hpp"
#include "repro/harness/figures.hpp"
#include "repro/harness/json.hpp"
#include "repro/harness/scheduler.hpp"

using namespace repro;
using namespace repro::harness;

namespace {

/// Parses "0,0.01,0.05" into rates; returns false on malformed input.
bool parse_rates(const std::string& csv, std::vector<double>* out) {
  out->clear();
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    try {
      std::size_t used = 0;
      const double rate = std::stod(item, &used);
      if (used != item.size() || rate < 0.0 || rate > 1.0) {
        return false;
      }
      out->push_back(rate);
    } catch (const std::exception&) {
      return false;
    }
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  FigureOptions options;
  bool fast = false;
  std::string benchmark;
  std::string json_path;
  std::string rates_csv = "0,0.01,0.05";
  std::uint64_t fault_seed = fault::FaultPlan{}.seed;
  Cli cli("fault_sweep");
  cli.add_flag("fast", &fast, "trim the long benchmarks (REPRO_FAST)");
  cli.add_uint("iterations", &options.iterations_override,
               "override the per-benchmark iteration count", /*min=*/1);
  cli.add_string("benchmark", &benchmark, "run a single benchmark");
  cli.add_string("rates", &rates_csv,
                 "comma-separated fault rates in [0,1] (0 = control row)");
  cli.add_uint("fault-seed", &fault_seed,
               "seed of the deterministic fault streams");
  cli.add_uint("jobs", &options.jobs, "worker threads for the run matrix",
               /*min=*/1);
  cli.add_string("json", &json_path, "write BENCH_*.json files here");
  cli.add_string("trace", &options.trace_dir,
                 "record event traces and export them here");
  cli.add_uint("cell-timeout-ms", &options.cell_timeout_ms,
               "abort any cell exceeding this wall-clock budget (ms; env "
               "REPRO_CELL_TIMEOUT_MS)",
               /*min=*/1);
  cli.add_uint("cell-retries", &options.cell_retries,
               "extra attempts per failed cell");
  cli.add_string("checkpoint-dir", &options.checkpoint_dir,
                 "save/resume completed cells in this directory");
  switch (cli.parse(argc, argv)) {
    case Cli::Status::kHelp:
      std::cout << cli.usage();
      return 0;
    case Cli::Status::kError:
      std::cerr << "error: " << cli.error() << "\n\n" << cli.usage();
      return 2;
    case Cli::Status::kOk:
      break;
  }
  std::vector<double> rates;
  if (!parse_rates(rates_csv, &rates)) {
    std::cerr << "error: --rates must be a comma-separated list of "
                 "values in [0,1]\n";
    return 2;
  }
  if (fast) {
    Env::global().set("REPRO_FAST", "1");
  }
  const std::vector<std::string> benchmarks =
      benchmark.empty() ? nas::workload_names()
                        : std::vector<std::string>{benchmark};

  std::cout << "Fault sweep: UPMlib degradation under injected faults "
               "(simulated 16-proc Origin2000)\n\n";

  // Worst failure class across every benchmark's sweep decides the
  // process exit code (fault=3 < timeout=4 < retry-exhausted=5 <
  // crash=6; see failure_exit_code).
  int exit_code = 0;
  for (const std::string& bench : benchmarks) {
    std::vector<RunConfig> configs;
    for (const double rate : rates) {
      for (const std::string placement : {"ft", "rr", "wc"}) {
        for (const bool upm : {false, true}) {
          RunConfig config = base_config(bench, options);
          config.placement = placement;
          if (upm) {
            config.upm_mode = nas::UpmMode::kDistribution;
          }
          if (rate > 0.0) {
            config.fault.seed = fault_seed;
            config.fault.set_rate(rate);
            // One garbled counter read must not trigger a migration
            // storm: require two consecutive qualifying passes.
            config.upm.hysteresis_passes = 2;
          }
          configs.push_back(std::move(config));
        }
      }
    }
    const SweepOutcome outcome = run_sweep(configs, options.sweep());
    for (const CellFailure& f : outcome.failures) {
      std::cerr << "FAILED " << f.describe() << '\n';
    }
    exit_code = std::max(exit_code, outcome.exit_code());

    // One row per cell; slowdowns are vs. this benchmark's fault-free
    // ft-base cell (the paper's usual baseline).
    std::vector<RunResult> results;
    const std::size_t cells_per_rate = 6;
    double base_seconds = 0.0;
    for (std::size_t i = 0; i < configs.size(); ++i) {
      if (configs[i].fault.empty() && configs[i].label() == "ft-base" &&
          outcome.results[i].total != 0) {
        base_seconds = outcome.results[i].seconds();
        break;
      }
    }
    TextTable table({"rate", "scheme", "time (s)", "vs ft-base@0",
                     "faults", "busy retries", "give-ups", "deferrals"});
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const RunResult& r = outcome.results[i];
      if (r.label.empty()) {
        continue;  // failed cell; already reported above
      }
      table.add_row(
          {fmt_double(rates[i / cells_per_rate], 3), r.label,
           fmt_double(r.seconds(), 3),
           base_seconds > 0.0
               ? fmt_percent(slowdown(r.seconds(), base_seconds))
               : "n/a",
           std::to_string(r.fault_stats.injected_total()),
           std::to_string(r.upm_stats.busy_retries),
           std::to_string(r.upm_stats.give_ups),
           std::to_string(r.upm_stats.hysteresis_deferrals)});
      results.push_back(r);
    }
    std::cout << "NAS " << bench << ":\n";
    table.print(std::cout);
    std::cout << "  cells: " << outcome.stats.cells_ok << "/"
              << outcome.stats.cells_total << " ok, "
              << outcome.stats.cells_resumed << " resumed, "
              << outcome.stats.cells_retried << " retries, "
              << outcome.stats.watchdog_fires << " watchdog\n\n";
    if (!json_path.empty()) {
      write_results_json(json_path + "/BENCH_fault_" + bench + ".json",
                         "fault_sweep/" + bench, results);
    }
  }
  return exit_code;
}
