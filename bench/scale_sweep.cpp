// Scale sweep past the paper's 16 nodes: {16, 64, 128, 512} logical
// nodes x {static, task} scheduling x {first-touch, round-robin,
// rr+upmlib}.
//
// The 16-node cell is the paper's fat-hypercube Origin2000; the larger
// machines are hierarchical topologies (hier:4x4x4, hier:8x4x4,
// hier:8x8x8) whose latency ladders extrapolate Table 1 past 3 hops.
// Static cells run the loop-parallel benchmark (CG/MG); task cells run
// its task-parallel twin (CGT/MGT) through the deterministic
// work-stealing scheduler. Weak scaling throughout: the problem grows
// with the machine so per-thread working sets stay constant.
//
// Timings reported (and written to BENCH_scale_sweep.json in
// google-benchmark shape for tools/perf_compare.py) are *simulated*
// milliseconds per timed iteration -- deterministic across hosts, so
// the +/-25% advisory band actually flags model changes, not host
// noise. Peak host RSS is printed at the end: past 64 processors the
// kAuto table backend switches to the sparse structures, which is what
// keeps the 512-node cells inside a laptop's memory.
//
// Usage: scale_sweep [--fast] [--benchmark=CG|MG] [--iterations=N]
//                    [--max-nodes=N] [--scale=X] [--jobs=N]
//                    [--json=DIR] [--verify-determinism] [--smoke]
#include <sys/resource.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "repro/common/table.hpp"
#include "repro/harness/cli.hpp"
#include "repro/harness/scheduler.hpp"

using namespace repro;
using namespace repro::harness;

namespace {

struct MachineSpec {
  std::size_t nodes;
  const char* topology;
};

constexpr MachineSpec kMachines[] = {
    {16, "fat-hypercube"},
    {64, "hier:4x4x4"},
    {128, "hier:8x4x4"},
    {512, "hier:8x8x8"},
};

struct Cell {
  MachineSpec machine;
  std::string sched;  // "static" | "task"
  std::string benchmark;
  std::string placement;
  bool upmlib = false;
};

/// Peak resident set of this process in MiB (Linux ru_maxrss is KiB).
double peak_rss_mib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

RunConfig cell_config(const Cell& cell, std::uint32_t iterations,
                      double base_scale, bool trace) {
  RunConfig config;
  config.benchmark = cell.benchmark;
  config.placement = cell.placement;
  config.iterations = iterations;
  if (cell.upmlib) {
    config.upm_mode = nas::UpmMode::kDistribution;
  }
  config.trace = trace;
  config.machine.num_nodes = cell.machine.nodes;
  config.machine.topology = cell.machine.topology;
  // Keep the machine's total frame pool constant while nodes grow, as
  // a real installation would partition a fixed budget; the weak-scaled
  // footprint stays well inside it.
  config.machine.frames_per_node = std::max<std::size_t>(
      1024, (16 * 32768) / cell.machine.nodes);
  // Weak scaling relative to the paper's 16-node Class A cell.
  config.workload.size_scale =
      base_scale * static_cast<double>(cell.machine.nodes) / 16.0;
  return config;
}

std::string cell_name(const Cell& cell) {
  std::ostringstream os;
  os << "ScaleSweep/" << cell.benchmark << '/' << cell.machine.nodes << '/'
     << cell.placement << (cell.upmlib ? "-upmlib" : "-base");
  return os.str();
}

void write_json(const std::string& dir, const std::vector<Cell>& cells,
                const std::vector<RunResult>& results,
                std::uint32_t iterations) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/BENCH_scale_sweep.json";
  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "cannot write " << path << '\n';
    return;
  }
  out << "{\n \"context\": {\n"
      << "  \"executable\": \"scale_sweep\",\n"
      << "  \"peak_rss_mib\": " << peak_rss_mib() << "\n },\n"
      << " \"benchmarks\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double sim_ms_per_iter =
        ns_to_seconds(results[i].total) * 1e3 /
        static_cast<double>(iterations);
    out << "  {\n"
        << "   \"name\": \"" << cell_name(cells[i]) << "\",\n"
        << "   \"run_name\": \"" << cell_name(cells[i]) << "\",\n"
        << "   \"run_type\": \"iteration\",\n"
        << "   \"repetitions\": 1,\n"
        << "   \"iterations\": " << iterations << ",\n"
        << "   \"real_time\": " << sim_ms_per_iter << ",\n"
        << "   \"cpu_time\": " << sim_ms_per_iter << ",\n"
        << "   \"time_unit\": \"ms\"\n"
        << "  }" << (i + 1 < cells.size() ? "," : "") << '\n';
  }
  out << " ]\n}\n";
  std::cout << "\nwrote " << path << '\n';
}

/// Compares per-cell trace digests of two sweep runs; returns the
/// number of mismatches (0 = byte-identical schedules).
std::size_t compare_digests(const std::vector<Cell>& cells,
                            const std::vector<RunResult>& a,
                            const std::vector<RunResult>& b,
                            const std::string& what) {
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (a[i].trace_digest != b[i].trace_digest) {
      ++mismatches;
      std::cerr << "DIGEST MISMATCH (" << what << "): " << cell_name(cells[i])
                << ' ' << a[i].trace_digest << " != " << b[i].trace_digest
                << '\n';
    }
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  bool verify = false;
  bool smoke = false;
  std::string benchmark = "CG";
  std::string json_dir;
  std::uint64_t iterations = 3;
  std::uint64_t jobs = 0;
  std::uint32_t cell_timeout_ms = 0;
  std::uint64_t max_nodes = 512;
  double base_scale = 0.25;

  Cli cli("scale_sweep");
  cli.add_flag("fast", &fast, "limit the sweep to 16 and 64 nodes");
  cli.add_string("benchmark", &benchmark,
                 "loop-parallel base benchmark: CG or MG (the task cells "
                 "run its task twin, CGT or MGT)");
  cli.add_uint("iterations", &iterations, "timed iterations per cell", 1);
  cli.add_uint("jobs", &jobs, "host worker threads (0 = auto)");
  cli.add_uint("cell-timeout-ms", &cell_timeout_ms,
               "abort any cell exceeding this wall-clock budget (ms; env "
               "REPRO_CELL_TIMEOUT_MS)",
               /*min=*/1);
  cli.add_uint("max-nodes", &max_nodes, "largest machine to sweep", 16);
  cli.add_double("scale", &base_scale,
                 "size_scale of the 16-node cell (weak scaling multiplies "
                 "it by nodes/16)");
  cli.add_string("json", &json_dir,
                 "directory for BENCH_scale_sweep.json (google-benchmark "
                 "shape, simulated ms per iteration)");
  cli.add_flag("verify-determinism", &verify,
               "run the matrix under --jobs, --jobs=1 and again under "
               "--jobs, and require byte-identical trace digests");
  cli.add_flag("smoke", &smoke,
               "CI mode: one 64-node task cell, tracing on, jobs=1 vs "
               "jobs=4 digest check");
  switch (cli.parse(argc, argv)) {
    case Cli::Status::kHelp:
      std::cout << cli.usage();
      return 0;
    case Cli::Status::kError:
      std::cerr << "error: " << cli.error() << "\n\n" << cli.usage();
      return 2;
    case Cli::Status::kOk:
      break;
  }
  if (benchmark != "CG" && benchmark != "MG") {
    std::cerr << "error: --benchmark must be CG or MG\n";
    return 2;
  }
  const std::string task_benchmark = benchmark + "T";

  std::vector<Cell> cells;
  if (smoke) {
    iterations = 2;
    cells.push_back(Cell{kMachines[1], "task", task_benchmark, "ft", false});
  } else {
    for (const MachineSpec& machine : kMachines) {
      if (machine.nodes > max_nodes || (fast && machine.nodes > 64)) {
        continue;
      }
      for (const std::string sched : {"static", "task"}) {
        const std::string bench =
            sched == "task" ? task_benchmark : benchmark;
        cells.push_back(Cell{machine, sched, bench, "ft", false});
        cells.push_back(Cell{machine, sched, bench, "rr", false});
        cells.push_back(Cell{machine, sched, bench, "rr", true});
      }
    }
  }

  const bool trace = verify || smoke;
  std::vector<RunConfig> configs;
  configs.reserve(cells.size());
  for (const Cell& cell : cells) {
    configs.push_back(cell_config(cell, static_cast<std::uint32_t>(iterations),
                                  base_scale, trace));
  }

  std::cout << "Scale sweep: " << cells.size() << " cells, "
            << benchmark << " (static) vs " << task_benchmark
            << " (deterministic work stealing), iterations=" << iterations
            << ", 16-node size_scale=" << base_scale << "\n\n";

  const std::size_t run_jobs = effective_jobs(std::max<std::uint64_t>(
      1, jobs == 0 ? 0 : jobs));
  const auto sweep_with = [cell_timeout_ms](std::size_t sweep_jobs) {
    SweepOptions sweep_options;
    sweep_options.jobs = sweep_jobs;
    sweep_options.cell_timeout_ms = cell_timeout_ms;
    return sweep_options;
  };
  const std::vector<RunResult> results =
      run_experiments(configs, sweep_with(run_jobs));

  if (trace) {
    const std::size_t check_jobs = smoke ? 4 : run_jobs;
    const std::vector<RunResult> serial =
        run_experiments(configs, sweep_with(1));
    const std::vector<RunResult> parallel =
        check_jobs == run_jobs ? results
                               : run_experiments(configs, sweep_with(check_jobs));
    std::size_t mismatches =
        compare_digests(cells, results, serial, "jobs");
    mismatches += compare_digests(cells, results, parallel, "rerun");
    if (mismatches != 0) {
      std::cerr << mismatches << " cell(s) not byte-identical\n";
      return 1;
    }
    std::cout << "determinism: all " << cells.size()
              << " cell(s) byte-identical across job counts and reruns\n\n";
  }

  TextTable table(
      {"nodes", "topology", "bench", "label", "sim ms/iter", "digest"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double sim_ms = ns_to_seconds(results[i].total) * 1e3 /
                          static_cast<double>(iterations);
    table.add_row({std::to_string(cells[i].machine.nodes),
                   cells[i].machine.topology, cells[i].benchmark,
                   results[i].label, fmt_double(sim_ms, 3),
                   results[i].trace_digest.empty() ? "-"
                                                   : results[i].trace_digest});
  }
  table.print(std::cout);
  std::cout << "\npeak RSS: " << fmt_double(peak_rss_mib(), 1)
            << " MiB (sparse backends engage automatically past 64 "
               "processors)\n";

  if (!json_dir.empty()) {
    write_json(json_dir, cells, results, static_cast<std::uint32_t>(iterations));
  }
  return 0;
}
