file(REMOVE_RECURSE
  "CMakeFiles/fig4_upmlib.dir/fig4_upmlib.cpp.o"
  "CMakeFiles/fig4_upmlib.dir/fig4_upmlib.cpp.o.d"
  "fig4_upmlib"
  "fig4_upmlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_upmlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
