# Empty compiler generated dependencies file for fig4_upmlib.
# This may be replaced when dependencies are built.
