# Empty dependencies file for fig6_recrep_scaled.
# This may be replaced when dependencies are built.
