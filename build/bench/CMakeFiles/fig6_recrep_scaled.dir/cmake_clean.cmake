file(REMOVE_RECURSE
  "CMakeFiles/fig6_recrep_scaled.dir/fig6_recrep_scaled.cpp.o"
  "CMakeFiles/fig6_recrep_scaled.dir/fig6_recrep_scaled.cpp.o.d"
  "fig6_recrep_scaled"
  "fig6_recrep_scaled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_recrep_scaled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
