# Empty dependencies file for fig5_recrep.
# This may be replaced when dependencies are built.
