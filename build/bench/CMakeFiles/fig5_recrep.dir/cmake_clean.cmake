file(REMOVE_RECURSE
  "CMakeFiles/fig5_recrep.dir/fig5_recrep.cpp.o"
  "CMakeFiles/fig5_recrep.dir/fig5_recrep.cpp.o.d"
  "fig5_recrep"
  "fig5_recrep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_recrep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
