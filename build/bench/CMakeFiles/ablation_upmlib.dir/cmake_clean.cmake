file(REMOVE_RECURSE
  "CMakeFiles/ablation_upmlib.dir/ablation_upmlib.cpp.o"
  "CMakeFiles/ablation_upmlib.dir/ablation_upmlib.cpp.o.d"
  "ablation_upmlib"
  "ablation_upmlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_upmlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
