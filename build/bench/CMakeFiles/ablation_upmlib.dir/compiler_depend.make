# Empty compiler generated dependencies file for ablation_upmlib.
# This may be replaced when dependencies are built.
