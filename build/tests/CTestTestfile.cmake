# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_memsys[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_omp[1]_include.cmake")
include("/root/repo/build/tests/test_upmlib[1]_include.cmake")
include("/root/repo/build/tests/test_nas[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_replication[1]_include.cmake")
include("/root/repo/build/tests/test_tlb[1]_include.cmake")
include("/root/repo/build/tests/test_scheduling[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
