file(REMOVE_RECURSE
  "CMakeFiles/test_upmlib.dir/test_upmlib.cpp.o"
  "CMakeFiles/test_upmlib.dir/test_upmlib.cpp.o.d"
  "test_upmlib"
  "test_upmlib.pdb"
  "test_upmlib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_upmlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
