# Empty compiler generated dependencies file for test_upmlib.
# This may be replaced when dependencies are built.
