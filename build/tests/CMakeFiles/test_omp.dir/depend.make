# Empty dependencies file for test_omp.
# This may be replaced when dependencies are built.
