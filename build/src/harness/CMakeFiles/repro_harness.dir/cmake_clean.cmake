file(REMOVE_RECURSE
  "CMakeFiles/repro_harness.dir/figures.cpp.o"
  "CMakeFiles/repro_harness.dir/figures.cpp.o.d"
  "CMakeFiles/repro_harness.dir/run.cpp.o"
  "CMakeFiles/repro_harness.dir/run.cpp.o.d"
  "librepro_harness.a"
  "librepro_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
