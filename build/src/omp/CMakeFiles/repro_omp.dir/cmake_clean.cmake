file(REMOVE_RECURSE
  "CMakeFiles/repro_omp.dir/machine.cpp.o"
  "CMakeFiles/repro_omp.dir/machine.cpp.o.d"
  "CMakeFiles/repro_omp.dir/runtime.cpp.o"
  "CMakeFiles/repro_omp.dir/runtime.cpp.o.d"
  "CMakeFiles/repro_omp.dir/schedule.cpp.o"
  "CMakeFiles/repro_omp.dir/schedule.cpp.o.d"
  "librepro_omp.a"
  "librepro_omp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_omp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
