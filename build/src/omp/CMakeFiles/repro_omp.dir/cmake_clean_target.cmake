file(REMOVE_RECURSE
  "librepro_omp.a"
)
