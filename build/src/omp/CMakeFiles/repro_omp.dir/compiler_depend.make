# Empty compiler generated dependencies file for repro_omp.
# This may be replaced when dependencies are built.
