
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/omp/machine.cpp" "src/omp/CMakeFiles/repro_omp.dir/machine.cpp.o" "gcc" "src/omp/CMakeFiles/repro_omp.dir/machine.cpp.o.d"
  "/root/repo/src/omp/runtime.cpp" "src/omp/CMakeFiles/repro_omp.dir/runtime.cpp.o" "gcc" "src/omp/CMakeFiles/repro_omp.dir/runtime.cpp.o.d"
  "/root/repo/src/omp/schedule.cpp" "src/omp/CMakeFiles/repro_omp.dir/schedule.cpp.o" "gcc" "src/omp/CMakeFiles/repro_omp.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/repro_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/memsys/CMakeFiles/repro_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/repro_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/repro_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/repro_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
