file(REMOVE_RECURSE
  "CMakeFiles/repro_memsys.dir/config.cpp.o"
  "CMakeFiles/repro_memsys.dir/config.cpp.o.d"
  "CMakeFiles/repro_memsys.dir/directory.cpp.o"
  "CMakeFiles/repro_memsys.dir/directory.cpp.o.d"
  "CMakeFiles/repro_memsys.dir/latency.cpp.o"
  "CMakeFiles/repro_memsys.dir/latency.cpp.o.d"
  "CMakeFiles/repro_memsys.dir/mem_queue.cpp.o"
  "CMakeFiles/repro_memsys.dir/mem_queue.cpp.o.d"
  "CMakeFiles/repro_memsys.dir/memory_system.cpp.o"
  "CMakeFiles/repro_memsys.dir/memory_system.cpp.o.d"
  "CMakeFiles/repro_memsys.dir/page_cache.cpp.o"
  "CMakeFiles/repro_memsys.dir/page_cache.cpp.o.d"
  "librepro_memsys.a"
  "librepro_memsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_memsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
