
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsys/config.cpp" "src/memsys/CMakeFiles/repro_memsys.dir/config.cpp.o" "gcc" "src/memsys/CMakeFiles/repro_memsys.dir/config.cpp.o.d"
  "/root/repo/src/memsys/directory.cpp" "src/memsys/CMakeFiles/repro_memsys.dir/directory.cpp.o" "gcc" "src/memsys/CMakeFiles/repro_memsys.dir/directory.cpp.o.d"
  "/root/repo/src/memsys/latency.cpp" "src/memsys/CMakeFiles/repro_memsys.dir/latency.cpp.o" "gcc" "src/memsys/CMakeFiles/repro_memsys.dir/latency.cpp.o.d"
  "/root/repo/src/memsys/mem_queue.cpp" "src/memsys/CMakeFiles/repro_memsys.dir/mem_queue.cpp.o" "gcc" "src/memsys/CMakeFiles/repro_memsys.dir/mem_queue.cpp.o.d"
  "/root/repo/src/memsys/memory_system.cpp" "src/memsys/CMakeFiles/repro_memsys.dir/memory_system.cpp.o" "gcc" "src/memsys/CMakeFiles/repro_memsys.dir/memory_system.cpp.o.d"
  "/root/repo/src/memsys/page_cache.cpp" "src/memsys/CMakeFiles/repro_memsys.dir/page_cache.cpp.o" "gcc" "src/memsys/CMakeFiles/repro_memsys.dir/page_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/repro_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
