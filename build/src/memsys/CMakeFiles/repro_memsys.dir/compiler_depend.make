# Empty compiler generated dependencies file for repro_memsys.
# This may be replaced when dependencies are built.
