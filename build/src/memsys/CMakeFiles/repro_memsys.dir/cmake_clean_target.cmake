file(REMOVE_RECURSE
  "librepro_memsys.a"
)
