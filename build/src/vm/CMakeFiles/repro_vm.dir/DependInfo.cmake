
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/address_space.cpp" "src/vm/CMakeFiles/repro_vm.dir/address_space.cpp.o" "gcc" "src/vm/CMakeFiles/repro_vm.dir/address_space.cpp.o.d"
  "/root/repo/src/vm/counters.cpp" "src/vm/CMakeFiles/repro_vm.dir/counters.cpp.o" "gcc" "src/vm/CMakeFiles/repro_vm.dir/counters.cpp.o.d"
  "/root/repo/src/vm/page_table.cpp" "src/vm/CMakeFiles/repro_vm.dir/page_table.cpp.o" "gcc" "src/vm/CMakeFiles/repro_vm.dir/page_table.cpp.o.d"
  "/root/repo/src/vm/physical_memory.cpp" "src/vm/CMakeFiles/repro_vm.dir/physical_memory.cpp.o" "gcc" "src/vm/CMakeFiles/repro_vm.dir/physical_memory.cpp.o.d"
  "/root/repo/src/vm/placement.cpp" "src/vm/CMakeFiles/repro_vm.dir/placement.cpp.o" "gcc" "src/vm/CMakeFiles/repro_vm.dir/placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/repro_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/memsys/CMakeFiles/repro_memsys.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
