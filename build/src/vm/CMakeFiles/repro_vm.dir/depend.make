# Empty dependencies file for repro_vm.
# This may be replaced when dependencies are built.
