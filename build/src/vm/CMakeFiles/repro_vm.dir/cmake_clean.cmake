file(REMOVE_RECURSE
  "CMakeFiles/repro_vm.dir/address_space.cpp.o"
  "CMakeFiles/repro_vm.dir/address_space.cpp.o.d"
  "CMakeFiles/repro_vm.dir/counters.cpp.o"
  "CMakeFiles/repro_vm.dir/counters.cpp.o.d"
  "CMakeFiles/repro_vm.dir/page_table.cpp.o"
  "CMakeFiles/repro_vm.dir/page_table.cpp.o.d"
  "CMakeFiles/repro_vm.dir/physical_memory.cpp.o"
  "CMakeFiles/repro_vm.dir/physical_memory.cpp.o.d"
  "CMakeFiles/repro_vm.dir/placement.cpp.o"
  "CMakeFiles/repro_vm.dir/placement.cpp.o.d"
  "librepro_vm.a"
  "librepro_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
