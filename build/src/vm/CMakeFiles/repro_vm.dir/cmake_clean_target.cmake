file(REMOVE_RECURSE
  "librepro_vm.a"
)
