file(REMOVE_RECURSE
  "librepro_nas.a"
)
