# Empty compiler generated dependencies file for repro_nas.
# This may be replaced when dependencies are built.
