file(REMOVE_RECURSE
  "CMakeFiles/repro_nas.dir/adi.cpp.o"
  "CMakeFiles/repro_nas.dir/adi.cpp.o.d"
  "CMakeFiles/repro_nas.dir/cg.cpp.o"
  "CMakeFiles/repro_nas.dir/cg.cpp.o.d"
  "CMakeFiles/repro_nas.dir/ft.cpp.o"
  "CMakeFiles/repro_nas.dir/ft.cpp.o.d"
  "CMakeFiles/repro_nas.dir/mg.cpp.o"
  "CMakeFiles/repro_nas.dir/mg.cpp.o.d"
  "CMakeFiles/repro_nas.dir/pattern.cpp.o"
  "CMakeFiles/repro_nas.dir/pattern.cpp.o.d"
  "CMakeFiles/repro_nas.dir/workload.cpp.o"
  "CMakeFiles/repro_nas.dir/workload.cpp.o.d"
  "librepro_nas.a"
  "librepro_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
