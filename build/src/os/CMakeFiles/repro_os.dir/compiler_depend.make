# Empty compiler generated dependencies file for repro_os.
# This may be replaced when dependencies are built.
