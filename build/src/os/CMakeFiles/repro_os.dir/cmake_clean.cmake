file(REMOVE_RECURSE
  "CMakeFiles/repro_os.dir/daemon.cpp.o"
  "CMakeFiles/repro_os.dir/daemon.cpp.o.d"
  "CMakeFiles/repro_os.dir/kernel.cpp.o"
  "CMakeFiles/repro_os.dir/kernel.cpp.o.d"
  "CMakeFiles/repro_os.dir/mmci.cpp.o"
  "CMakeFiles/repro_os.dir/mmci.cpp.o.d"
  "librepro_os.a"
  "librepro_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
