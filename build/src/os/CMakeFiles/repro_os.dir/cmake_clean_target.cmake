file(REMOVE_RECURSE
  "librepro_os.a"
)
