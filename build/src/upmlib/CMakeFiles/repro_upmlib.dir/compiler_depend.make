# Empty compiler generated dependencies file for repro_upmlib.
# This may be replaced when dependencies are built.
