file(REMOVE_RECURSE
  "CMakeFiles/repro_upmlib.dir/upmlib.cpp.o"
  "CMakeFiles/repro_upmlib.dir/upmlib.cpp.o.d"
  "librepro_upmlib.a"
  "librepro_upmlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_upmlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
