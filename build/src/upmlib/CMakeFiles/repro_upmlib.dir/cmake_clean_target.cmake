file(REMOVE_RECURSE
  "librepro_upmlib.a"
)
