file(REMOVE_RECURSE
  "CMakeFiles/stencil_phases.dir/stencil_phases.cpp.o"
  "CMakeFiles/stencil_phases.dir/stencil_phases.cpp.o.d"
  "stencil_phases"
  "stencil_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
