# Empty dependencies file for stencil_phases.
# This may be replaced when dependencies are built.
