# Empty dependencies file for sparse_solver.
# This may be replaced when dependencies are built.
