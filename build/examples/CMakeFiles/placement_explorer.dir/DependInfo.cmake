
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/placement_explorer.cpp" "examples/CMakeFiles/placement_explorer.dir/placement_explorer.cpp.o" "gcc" "examples/CMakeFiles/placement_explorer.dir/placement_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/repro_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/repro_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/upmlib/CMakeFiles/repro_upmlib.dir/DependInfo.cmake"
  "/root/repo/build/src/omp/CMakeFiles/repro_omp.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/repro_os.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/repro_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/repro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/memsys/CMakeFiles/repro_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/repro_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
