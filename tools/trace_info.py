#!/usr/bin/env python3
"""Inspect an RTRC binary trace file (see DESIGN.md section 16).

Usage:
    tools/trace_info.py TRACE.rtrc            # header, meta, chunk table
    tools/trace_info.py TRACE.rtrc --verify   # + recompute every digest

Prints the file header, decoded metadata, the footer's chunk table and
the region-name table.  With --verify the FNV-1a digest of the metadata
block and of every chunk payload is recomputed and compared against the
stored values; any mismatch (or structural inconsistency between the
footer and the chunk headers) exits nonzero.  CI runs --verify on the
trace dumped by the replay smoke step, so a silent encoder change that
still replays cleanly is caught here.

Pure standard library; layout constants mirror
src/tracefmt/include/repro/tracefmt/format.hpp (RTRC version 1).
"""

import argparse
import struct
import sys

FILE_MAGIC = 0x43525452  # "RTRC"
CHUNK_MAGIC = 0x4B435452  # "RTCK"
TABLE_MAGIC = 0x42545452  # "RTTB"
FOOTER_MAGIC = 0x4E455452  # "RTEN"
FORMAT_VERSION = 1

FILE_HEADER = struct.Struct("<IIQQQ")  # magic, version, meta_bytes, meta_digest, reserved
CHUNK_HEADER = struct.Struct("<IIQQQQ")  # magic, reserved, payload, records, ops, digest
FOOTER = struct.Struct("<IIQQQQQ")  # magic, version, chunks, table_off, names_off, records, ops

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x00000100000001B3
MASK64 = (1 << 64) - 1

RECORD_KINDS = {0: "define_name", 1: "cold_begin", 2: "iteration_begin",
                3: "region", 4: "advance"}


def fnv1a(data: bytes) -> int:
    h = FNV_OFFSET
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK64
    return h


class Cursor:
    """Bounds-checked LEB128 reader over a bytes object."""

    def __init__(self, data: bytes, at: int = 0):
        self.data = data
        self.at = at

    def varint(self) -> int:
        value = 0
        shift = 0
        while True:
            if self.at >= len(self.data):
                raise ValueError("varint past end of buffer")
            byte = self.data[self.at]
            self.at += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift >= 64:
                raise ValueError("varint over 64 bits")

    def string(self) -> str:
        n = self.varint()
        if self.at + n > len(self.data):
            raise ValueError("string past end of buffer")
        s = self.data[self.at:self.at + n].decode("utf-8", "replace")
        self.at += n
        return s

    def u64(self) -> int:
        if self.at + 8 > len(self.data):
            raise ValueError("u64 past end of buffer")
        (v,) = struct.unpack_from("<Q", self.data, self.at)
        self.at += 8
        return v


def decode_meta(blob: bytes) -> dict:
    c = Cursor(blob)
    meta = {
        "num_procs": c.varint(),
        "num_threads": c.varint(),
        "iterations": c.varint(),
        "page_size": c.varint(),
        "benchmark": c.string(),
        "source_label": c.string(),
    }
    meta["allocations"] = [
        {"name": c.string(), "first_page": c.varint(), "pages": c.varint()}
        for _ in range(c.varint())
    ]
    meta["hot_ranges"] = [
        {"first_page": c.varint(), "pages": c.varint()}
        for _ in range(c.varint())
    ]
    if c.at != len(blob):
        raise ValueError("metadata has trailing bytes")
    return meta


def count_record_kinds(payload: bytes, record_count: int) -> dict:
    """Tallies record kinds in one chunk payload (structural decode)."""
    c = Cursor(payload)
    kinds = {}
    for _ in range(record_count):
        kind = payload[c.at]
        c.at += 1
        name = RECORD_KINDS.get(kind)
        if name is None:
            raise ValueError(f"unknown record kind {kind}")
        kinds[name] = kinds.get(name, 0) + 1
        if name == "define_name":
            c.varint()
            c.string()
        elif name == "iteration_begin" or name == "advance":
            c.varint()
        elif name == "region":
            c.varint()  # name_id
            num_threads = c.varint()
            binding_kind = payload[c.at]
            c.at += 1
            if binding_kind == 1:
                for _ in range(num_threads):
                    c.varint()
            elif binding_kind != 0:
                raise ValueError(f"unknown binding kind {binding_kind}")
            c.varint()  # max_access_lines
            c.varint()  # max_line_begin
            for _ in range(num_threads):
                for _ in range(c.varint()):
                    flags = payload[c.at]
                    c.at += 1
                    if flags & 0x1:  # access
                        c.varint()  # page delta (zigzag)
                        c.varint()  # lines
                        c.varint()  # line_begin
                    c.varint()  # compute
    if c.at != len(payload):
        raise ValueError("chunk payload has trailing bytes")
    return kinds


def fail(message: str) -> None:
    print(f"trace_info: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("trace", help="RTRC trace file")
    parser.add_argument("--verify", action="store_true",
                        help="recompute and check every digest; exit "
                             "nonzero on any mismatch")
    args = parser.parse_args()

    with open(args.trace, "rb") as f:
        data = f.read()

    if len(data) < FILE_HEADER.size + FOOTER.size:
        fail(f"{args.trace}: too small to be an RTRC trace")
    magic, version, meta_bytes, meta_digest, _ = FILE_HEADER.unpack_from(data)
    if magic != FILE_MAGIC:
        fail(f"{args.trace}: bad file magic {magic:#x}")
    if version != FORMAT_VERSION:
        fail(f"{args.trace}: unsupported version {version}")
    meta_blob = data[FILE_HEADER.size:FILE_HEADER.size + meta_bytes]
    if len(meta_blob) != meta_bytes:
        fail(f"{args.trace}: truncated metadata")
    try:
        meta = decode_meta(meta_blob)
    except ValueError as e:
        fail(f"{args.trace}: {e}")

    (f_magic, f_version, chunk_count, table_off, names_off,
     total_records, total_ops) = FOOTER.unpack_from(
         data, len(data) - FOOTER.size)
    if f_magic != FOOTER_MAGIC:
        fail(f"{args.trace}: bad footer magic {f_magic:#x}")
    if f_version != FORMAT_VERSION:
        fail(f"{args.trace}: footer version {f_version} != {FORMAT_VERSION}")

    (t_magic,) = struct.unpack_from("<I", data, table_off)
    if t_magic != TABLE_MAGIC:
        fail(f"{args.trace}: bad chunk-table magic {t_magic:#x}")
    table = Cursor(data[:names_off], table_off + 4)
    chunks = []
    for _ in range(chunk_count):
        chunks.append({
            "offset": table.varint(),
            "payload_bytes": table.varint(),
            "record_count": table.varint(),
            "op_count": table.varint(),
            "payload_digest": table.u64(),
        })

    names_cursor = Cursor(data[:len(data) - FOOTER.size], names_off)
    names = [names_cursor.string() for _ in range(names_cursor.varint())]

    print(f"file:          {args.trace} ({len(data)} bytes)")
    print(f"format:        RTRC version {version}")
    print(f"benchmark:     {meta['benchmark']} ({meta['source_label']})")
    print(f"machine:       {meta['num_procs']} procs, "
          f"{meta['num_threads']} threads, page size {meta['page_size']}")
    print(f"iterations:    {meta['iterations']}")
    print(f"allocations:   " + (", ".join(
        f"{a['name']}[{a['pages']}p@{a['first_page']}]"
        for a in meta["allocations"]) or "-"))
    print(f"hot ranges:    " + (", ".join(
        f"[{r['first_page']}, {r['first_page'] + r['pages']})"
        for r in meta["hot_ranges"]) or "-"))
    print(f"totals:        {total_records} records, {total_ops} ops, "
          f"{chunk_count} chunk(s)")
    print(f"region names:  {', '.join(names) or '-'}")
    print()
    print("chunk  offset      payload  records  ops      digest")
    for i, c in enumerate(chunks):
        print(f"{i:<6} {c['offset']:<11} {c['payload_bytes']:<8} "
              f"{c['record_count']:<8} {c['op_count']:<8} "
              f"{c['payload_digest']:016x}")

    # Structural cross-checks (always on).
    sum_records = sum(c["record_count"] for c in chunks)
    sum_ops = sum(c["op_count"] for c in chunks)
    if sum_records != total_records:
        fail(f"chunk table records {sum_records} != footer {total_records}")
    if sum_ops != total_ops:
        fail(f"chunk table ops {sum_ops} != footer {total_ops}")

    if not args.verify:
        return

    failures = 0
    if fnv1a(meta_blob) != meta_digest:
        print("VERIFY: metadata digest mismatch", file=sys.stderr)
        failures += 1
    record_kinds = {}
    for i, c in enumerate(chunks):
        (h_magic, _, h_payload, h_records, h_ops, h_digest) = \
            CHUNK_HEADER.unpack_from(data, c["offset"])
        if h_magic != CHUNK_MAGIC:
            print(f"VERIFY: chunk {i}: bad magic {h_magic:#x}",
                  file=sys.stderr)
            failures += 1
            continue
        if (h_payload, h_records, h_ops, h_digest) != (
                c["payload_bytes"], c["record_count"], c["op_count"],
                c["payload_digest"]):
            print(f"VERIFY: chunk {i}: header disagrees with chunk table",
                  file=sys.stderr)
            failures += 1
        payload = data[c["offset"] + CHUNK_HEADER.size:
                       c["offset"] + CHUNK_HEADER.size + h_payload]
        if fnv1a(payload) != h_digest:
            print(f"VERIFY: chunk {i}: payload digest mismatch",
                  file=sys.stderr)
            failures += 1
            continue
        try:
            for kind, n in count_record_kinds(payload, h_records).items():
                record_kinds[kind] = record_kinds.get(kind, 0) + n
        except ValueError as e:
            print(f"VERIFY: chunk {i}: {e}", file=sys.stderr)
            failures += 1
    print()
    print("records:       " + (", ".join(
        f"{n} {kind}" for kind, n in sorted(record_kinds.items())) or "-"))
    if failures:
        fail(f"{failures} verification failure(s)")
    print(f"verify:        OK ({len(chunks)} chunk digest(s) + metadata)")


if __name__ == "__main__":
    main()
