#!/usr/bin/env python3
"""Convert clang-tidy console output to SARIF 2.1.0 for CI annotation.

Usage:
    clang-tidy -p build src/**/*.cpp | tools/tidy_to_sarif.py \
        --output clang-tidy.sarif [--root "$PWD"]

Reads the textual diagnostics clang-tidy writes to stdout:

    path/to/file.cpp:12:34: warning: message text [check-name]
        ... note/code context lines (attached verbatim) ...

and emits one SARIF run with a rule per distinct check, so GitHub
code scanning (or any SARIF viewer) can annotate the diff. Stdlib
only -- no dependency on clang tooling Python packages.

Exit status mirrors clang-tidy gating: nonzero when any error-level
diagnostic was parsed (warnings annotate but do not fail; pair with
--warnings-as-errors on the clang-tidy side to harden).
"""

import argparse
import json
import os
import re
import sys

# path:line:col: severity: message [check,check2]
DIAG_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?P<severity>error|warning|note): (?P<message>.*?)"
    r"(?: \[(?P<checks>[^\[\]]+)\])?$"
)

LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def parse(stream):
    """Yields diagnostic dicts; context lines extend the last message."""
    diags = []
    for line in stream:
        line = line.rstrip("\n")
        match = DIAG_RE.match(line)
        if match:
            if match.group("severity") == "note" and diags:
                # Notes attach to the preceding diagnostic.
                diags[-1]["message"] += "; note: " + match.group("message")
                continue
            diags.append(
                {
                    "path": match.group("path"),
                    "line": int(match.group("line")),
                    "col": int(match.group("col")),
                    "level": LEVELS[match.group("severity")],
                    "message": match.group("message"),
                    "check": (match.group("checks") or "clang-tidy").split(
                        ","
                    )[0],
                }
            )
    return diags


def to_sarif(diags, root):
    rules = sorted({d["check"] for d in diags})
    results = []
    for d in diags:
        path = d["path"]
        if root and os.path.isabs(path):
            rel = os.path.relpath(path, root)
            if not rel.startswith(".."):
                path = rel
        results.append(
            {
                "ruleId": d["check"],
                "level": d["level"],
                "message": {"text": d["message"]},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": path.replace(os.sep, "/"),
                            },
                            "region": {
                                "startLine": d["line"],
                                "startColumn": d["col"],
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "clang-tidy",
                        "rules": [{"id": rule} for rule in rules],
                    }
                },
                "results": results,
            }
        ],
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", required=True, help="SARIF file to write"
    )
    parser.add_argument(
        "--root",
        default=os.getcwd(),
        help="repo root; absolute paths are rewritten relative to it",
    )
    parser.add_argument(
        "input",
        nargs="?",
        help="clang-tidy log file (default: stdin)",
    )
    args = parser.parse_args()

    if args.input:
        with open(args.input, "r", encoding="utf-8", errors="replace") as f:
            diags = parse(f)
    else:
        diags = parse(sys.stdin)

    sarif = to_sarif(diags, args.root)
    tmp = args.output + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(sarif, f, indent=2)
        f.write("\n")
    os.replace(tmp, args.output)

    errors = sum(1 for d in diags if d["level"] == "error")
    warnings = sum(1 for d in diags if d["level"] == "warning")
    print(
        f"tidy_to_sarif: {len(diags)} finding(s) "
        f"({errors} error(s), {warnings} warning(s)) -> {args.output}"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
