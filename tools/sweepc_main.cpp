// repro_sweepc: client for the sweep service daemon (repro_sweepd).
//
//   repro_sweepc --socket=/tmp/repro.sock --benchmark=CG
//                --placements=ft,rr,wc --upm=off,dist --iterations=3
//                --scale=0.25
//
// Builds the cross product of placements x upm modes as one framed
// request, prints one line per cell:
//
//   CELL <benchmark> <label> <digest> cached=<0|1>
//   FAIL <benchmark> <label> <class>: <message>
//
// which is what CI's service-smoke step diffs against the golden
// digests. Exit code: 0 all cells ok, 2 usage/busy/protocol error,
// else the failure_exit_code of the most severe failed cell.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "repro/harness/cli.hpp"
#include "repro/service/client.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using repro::harness::Cli;
  std::string socket_path = "/tmp/repro_sweepd.sock";
  std::string benchmark = "CG";
  std::string placements = "ft";
  std::string upm_modes = "off";
  std::uint32_t iterations = 0;
  double scale = 1.0;
  std::uint64_t seed = 12345;
  bool shutdown = false;

  Cli cli("repro_sweepc");
  cli.add_string("socket", &socket_path, "daemon socket path");
  cli.add_string("benchmark", &benchmark, "benchmark name (BT, SP, CG, ...)");
  cli.add_string("placements", &placements,
                 "comma-separated placements (ft,rr,rand,wc)");
  cli.add_string("upm", &upm_modes,
                 "comma-separated UPMlib modes (off,dist,recrep)");
  cli.add_uint("iterations", &iterations, "timed iterations (0 = default)");
  cli.add_double("scale", &scale, "problem size multiplier");
  cli.add_uint("seed", &seed, "simulation seed");
  cli.add_flag("shutdown", &shutdown,
               "ask the daemon to drain and exit instead of sweeping");

  switch (cli.parse(argc, argv)) {
    case Cli::Status::kHelp:
      std::cout << cli.usage();
      return 0;
    case Cli::Status::kError:
      std::cerr << "error: " << cli.error() << "\n\n" << cli.usage();
      return 2;
    case Cli::Status::kOk:
      break;
  }

  repro::service::SweepClient client(socket_path);
  if (shutdown) {
    if (!client.shutdown_daemon()) {
      std::cerr << "repro_sweepc: no daemon at " << socket_path << "\n";
      return 2;
    }
    return 0;
  }

  repro::service::SweepRequest request;
  for (const std::string& placement : split_csv(placements)) {
    for (const std::string& upm : split_csv(upm_modes)) {
      repro::service::CellSpec spec;
      spec.benchmark = benchmark;
      spec.placement = placement;
      spec.upm = upm;
      spec.iterations = iterations;
      spec.size_scale = scale;
      spec.seed = seed;
      request.cells.push_back(std::move(spec));
    }
  }
  if (request.cells.empty()) {
    std::cerr << "repro_sweepc: empty placement/upm cross product\n";
    return 2;
  }

  const repro::service::SweepReply reply = client.submit(request);
  if (reply.busy) {
    std::cerr << "repro_sweepc: daemon is busy (admission queue full)\n";
    return 2;
  }
  if (!reply.error.empty()) {
    std::cerr << "repro_sweepc: " << reply.error << "\n";
    return 2;
  }
  for (std::size_t i = 0; i < reply.cells.size(); ++i) {
    const repro::service::CellOutcome& cell = reply.cells[i];
    const std::string label = request.cells[i].to_config().label();
    if (cell.ok) {
      std::cout << "CELL " << benchmark << ' ' << label << ' '
                << cell.result.trace_digest << " cached=" << (cell.cached ? 1 : 0)
                << "\n";
    } else {
      std::cout << "FAIL " << benchmark << ' ' << label << ' '
                << repro::harness::failure_class_name(cell.cls) << ": "
                << cell.message << "\n";
    }
  }
  return reply.exit_code();
}
