#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a checked-in baseline.

Usage:
    tools/perf_compare.py BASELINE.json CURRENT.json [--band 0.25]

Every benchmark present in both files is compared on its
`items_per_second` counter when available (higher is better), falling
back to `real_time` (lower is better).  A readable delta table is
printed; any benchmark outside the +/-band guard window marks the run
as failed and the script exits nonzero.

The baseline lives in bench/baseline/BENCH_micro_engine.json and is
regenerated on purposeful perf changes with:

    ./build/bench/micro_engine --benchmark_min_time=0.2 \
        --benchmark_out=bench/baseline/BENCH_micro_engine.json \
        --benchmark_out_format=json

On a noisy host, run it a few times and keep, per benchmark, the entry
with the lowest real_time ("best of N"): minima are far more stable
than single runs, and a too-slow baseline would hide regressions.

Absolute timings shift with host hardware; the guard band is meant for
same-machine A/B runs (local development, a dedicated perf runner). On
shared CI the compare step is advisory (continue-on-error) and the
table is what reviewers read.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """Returns {name: (metric_value, metric_kind)} for a benchmark JSON."""
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        if "items_per_second" in bench:
            out[name] = (float(bench["items_per_second"]), "items/s")
        elif "real_time" in bench:
            unit = bench.get("time_unit", "ns")
            out[name] = (float(bench["real_time"]), "time:" + unit)
    return out


def fmt_rate(value):
    for unit, scale in (("G", 1e9), ("M", 1e6), ("k", 1e3)):
        if value >= scale:
            return f"{value / scale:.3f}{unit}/s"
    return f"{value:.1f}/s"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--band",
        type=float,
        default=0.25,
        help="allowed fractional regression/improvement window "
        "(default 0.25 = +/-25%%)",
    )
    args = parser.parse_args()

    base = load_benchmarks(args.baseline)
    cur = load_benchmarks(args.current)
    shared = [name for name in base if name in cur]
    if not shared:
        print("perf_compare: no common benchmarks between the two files",
              file=sys.stderr)
        return 2

    rows = []
    failures = 0
    for name in shared:
        base_value, kind = base[name]
        cur_value, cur_kind = cur[name]
        if kind != cur_kind or base_value <= 0:
            continue
        # Normalize so that delta > 0 always means "faster".
        if kind == "items/s":
            delta = cur_value / base_value - 1.0
            shown = f"{fmt_rate(base_value)} -> {fmt_rate(cur_value)}"
        else:
            unit = kind.partition(":")[2]
            delta = base_value / cur_value - 1.0
            shown = f"{base_value:.1f}{unit} -> {cur_value:.1f}{unit}"
        ok = abs(delta) <= args.band
        if not ok:
            failures += 1
        rows.append((name, shown, delta, ok))

    name_width = max(len(r[0]) for r in rows)
    value_width = max(len(r[1]) for r in rows)
    print(f"{'benchmark':<{name_width}}  {'baseline -> current':<{value_width}}"
          f"  {'delta':>8}  verdict")
    print("-" * (name_width + value_width + 22))
    for name, shown, delta, ok in rows:
        verdict = "ok" if ok else ("REGRESSED" if delta < 0 else "IMPROVED*")
        print(f"{name:<{name_width}}  {shown:<{value_width}}"
              f"  {delta:+8.1%}  {verdict}")
    if failures:
        print(f"\n{failures} benchmark(s) outside the +/-{args.band:.0%} "
              "guard band. If intentional, regenerate the baseline "
              "(see tools/perf_compare.py --help).")
        return 1
    print(f"\nall {len(rows)} shared benchmarks within +/-{args.band:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
