#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a checked-in baseline.

Usage:
    tools/perf_compare.py BASELINE.json CURRENT.json [--band 0.25]
    tools/perf_compare.py --advisor-json BENCH_advisor_validation.json \
        [--min-precision 0.8]

Every benchmark present in both files is compared on its
`items_per_second` counter when available (higher is better), falling
back to `real_time` (lower is better).  A readable delta table is
printed; any benchmark outside the +/-band guard window marks the run
as failed and the script exits nonzero.

With --advisor-json the script instead summarizes an advisor
validation run (bench/advisor_validation --json): the aggregate
precision/recall block and per-benchmark rank agreement are printed,
and any gated metric below --min-precision (or a negative Kendall tau)
exits nonzero -- the same gate the bench itself applies, usable on an
archived JSON artifact without rerunning the sweep.

The baseline lives in bench/baseline/BENCH_micro_engine.json and is
regenerated on purposeful perf changes with:

    ./build/bench/micro_engine --benchmark_min_time=0.2 \
        --benchmark_out=bench/baseline/BENCH_micro_engine.json \
        --benchmark_out_format=json

On a noisy host, run it a few times and keep, per benchmark, the entry
with the lowest real_time ("best of N"): minima are far more stable
than single runs, and a too-slow baseline would hide regressions.

Absolute timings shift with host hardware; the guard band is meant for
same-machine A/B runs (local development, a dedicated perf runner). On
shared CI the compare step is advisory (continue-on-error) and the
table is what reviewers read.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """Returns {name: (metric_value, metric_kind)} for a benchmark JSON."""
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        if "items_per_second" in bench:
            out[name] = (float(bench["items_per_second"]), "items/s")
        elif "real_time" in bench:
            unit = bench.get("time_unit", "ns")
            out[name] = (float(bench["real_time"]), "time:" + unit)
    return out


def fmt_rate(value):
    for unit, scale in (("G", 1e9), ("M", 1e6), ("k", 1e3)):
        if value >= scale:
            return f"{value / scale:.3f}{unit}/s"
    return f"{value:.1f}/s"


def summarize_advisor(path, min_precision):
    """Prints and gates a BENCH_advisor_validation.json artifact."""
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    agg = data["aggregate"]
    gated = [
        ("migration precision", agg["migration_precision"]),
        ("migration recall", agg["migration_recall"]),
        ("target agreement", agg["target_agreement"]),
        ("ft-home agreement", agg["home_agreement"]),
        ("ping-pong precision", agg["pingpong_precision"]),
        ("cold-home precision", agg["cold_home_precision"]),
    ]
    failures = 0
    print(f"advisor validation ({path}):")
    for name, value in gated:
        ok = value >= min_precision
        failures += 0 if ok else 1
        print(f"  {name:<22} {value:.3f}  "
              f"{'ok' if ok else 'BELOW ' + format(min_precision, '.2f')}")
    tau = agg["min_kendall_tau"]
    tau_ok = tau > 0.0
    failures += 0 if tau_ok else 1
    print(f"  {'min kendall tau-a':<22} {tau:.3f}  "
          f"{'ok' if tau_ok else 'ANTI-CORRELATED'}")
    vectors_ok = bool(agg.get("vectors_exact", False))
    failures += 0 if vectors_ok else 1
    print(f"  {'migration vectors':<22} "
          f"{'exact' if vectors_ok else 'MISMATCH'}")
    print()
    for bench in data.get("benchmarks", []):
        agrees = "agrees" if bench["verdict_agrees"] else "DISAGREES"
        print(f"  {bench['benchmark']:<4} tau={bench['kendall_tau']:+.3f}  "
              f"predicted={bench['predicted_best']:<10} "
              f"actual={bench['actual_best']:<10} verdict {agrees}")
    if failures:
        print(f"\n{failures} advisor metric(s) below the "
              f"{min_precision:.2f} floor")
        return 1
    print(f"\nall advisor metrics at or above {min_precision:.2f}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument(
        "--band",
        type=float,
        default=0.25,
        help="allowed fractional regression/improvement window "
        "(default 0.25 = +/-25%%)",
    )
    parser.add_argument(
        "--advisor-json",
        help="summarize and gate a BENCH_advisor_validation.json instead "
        "of comparing benchmark timings",
    )
    parser.add_argument(
        "--min-precision",
        type=float,
        default=0.8,
        help="gate for --advisor-json metrics (default 0.8)",
    )
    args = parser.parse_args()

    if args.advisor_json:
        return summarize_advisor(args.advisor_json, args.min_precision)
    if not args.baseline or not args.current:
        parser.error("baseline and current are required unless "
                     "--advisor-json is given")

    base = load_benchmarks(args.baseline)
    cur = load_benchmarks(args.current)
    shared = [name for name in base if name in cur]
    if not shared:
        print("perf_compare: no common benchmarks between the two files",
              file=sys.stderr)
        return 2

    rows = []
    failures = 0
    for name in shared:
        base_value, kind = base[name]
        cur_value, cur_kind = cur[name]
        if kind != cur_kind or base_value <= 0:
            continue
        # Normalize so that delta > 0 always means "faster".
        if kind == "items/s":
            delta = cur_value / base_value - 1.0
            shown = f"{fmt_rate(base_value)} -> {fmt_rate(cur_value)}"
        else:
            unit = kind.partition(":")[2]
            delta = base_value / cur_value - 1.0
            shown = f"{base_value:.1f}{unit} -> {cur_value:.1f}{unit}"
        ok = abs(delta) <= args.band
        if not ok:
            failures += 1
        rows.append((name, shown, delta, ok))

    name_width = max(len(r[0]) for r in rows)
    value_width = max(len(r[1]) for r in rows)
    print(f"{'benchmark':<{name_width}}  {'baseline -> current':<{value_width}}"
          f"  {'delta':>8}  verdict")
    print("-" * (name_width + value_width + 22))
    for name, shown, delta, ok in rows:
        verdict = "ok" if ok else ("REGRESSED" if delta < 0 else "IMPROVED*")
        print(f"{name:<{name_width}}  {shown:<{value_width}}"
              f"  {delta:+8.1%}  {verdict}")
    if failures:
        print(f"\n{failures} benchmark(s) outside the +/-{args.band:.0%} "
              "guard band. If intentional, regenerate the baseline "
              "(see tools/perf_compare.py --help).")
        return 1
    print(f"\nall {len(rows)} shared benchmarks within +/-{args.band:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
