// repro_sweepd: the long-running sweep service daemon (DESIGN.md §17).
//
//   repro_sweepd --socket=/tmp/repro.sock --workers=4
//                --cache-dir=/var/tmp/repro-cache --deadline-ms=60000
//
// Serves framed sweep requests (see repro_sweepc) until SIGTERM/SIGINT,
// then drains gracefully: admitted cells finish, the result cache is
// snapshotted, every worker is reaped.
#include <iostream>

#include "repro/harness/cli.hpp"
#include "repro/service/daemon.hpp"

int main(int argc, char** argv) {
  using repro::harness::Cli;
  repro::service::DaemonConfig config;
  config.socket_path = "/tmp/repro_sweepd.sock";
  double fault_rate = 0.0;

  Cli cli("repro_sweepd");
  cli.add_string("socket", &config.socket_path,
                 "Unix-domain socket path to serve on");
  cli.add_uint("workers", &config.workers, "worker processes", /*min=*/1,
               /*max=*/256);
  cli.add_uint("max-pending", &config.max_pending_requests,
               "admitted-but-unfinished requests before shedding BUSY",
               /*min=*/1);
  cli.add_uint("deadline-ms", &config.cell_deadline_ms,
               "per-cell wall-clock budget before SIGKILL (0 = none)");
  cli.add_uint("max-attempts", &config.max_attempts,
               "dispatch attempts per cell before a typed failure",
               /*min=*/1, /*max=*/100);
  cli.add_uint("backoff-ms", &config.backoff_base_ms,
               "re-dispatch backoff base (doubles per attempt)");
  cli.add_string("cache-dir", &config.cache.dir,
                 "result cache directory (empty = memory-only)");
  cli.add_uint("cache-capacity", &config.cache.capacity,
               "resident result cache entries", /*min=*/1);
  cli.add_uint("cache-snapshot-every", &config.cache.snapshot_every,
               "journal appends between cache snapshots (0 = drain only)");
  bool no_straggler = false;
  cli.add_flag("no-straggler-duplication", &no_straggler,
               "disable re-issuing the slowest in-flight cell to idle slots");
  cli.add_double("service-fault-rate", &fault_rate,
                 "chaos: worker abort/hang/garble/torn rate per dispatch",
                 /*gt=*/-1.0);
  cli.add_uint("service-fault-seed", &config.faults.seed,
               "chaos: deterministic fault seed");

  switch (cli.parse(argc, argv)) {
    case Cli::Status::kHelp:
      std::cout << cli.usage();
      return 0;
    case Cli::Status::kError:
      std::cerr << "error: " << cli.error() << "\n\n" << cli.usage();
      return 2;
    case Cli::Status::kOk:
      break;
  }
  config.straggler_duplication = !no_straggler;
  if (fault_rate > 0.0) {
    config.faults.set_rate(fault_rate);
  }
  // Environment overrides compose under the flags, as everywhere else.
  config.faults = repro::fault::ServiceFaultPlan::from_env(config.faults);

  try {
    repro::service::SweepDaemon daemon(config);
    repro::service::install_signal_handlers(&daemon);
    daemon.run();
    const repro::service::ServiceStats& s = daemon.stats();
    std::cout << "sweepd: drained. requests=" << s.requests_admitted
              << " busy=" << s.requests_shed_busy
              << " cells=" << s.cells_completed << "/"
              << s.cells_completed + s.cells_failed
              << " cache_hits=" << s.cache_hits
              << " redispatches=" << s.redispatches
              << " crashes=" << s.worker_crashes
              << " deadline_kills=" << s.worker_deadline_kills
              << " garbled=" << s.garbled_frames << "\n";
  } catch (const std::exception& e) {
    std::cerr << "repro_sweepd: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
